// Medical admissions: a synthetic stand-in for the MIMIC-II clinical
// dataset (§4, [2]) — "exemplifies a dataset that a clinical researcher
// might use. The schema ... is significantly complex and it is of larger
// size."
//
// The wide-schema option appends extra low-signal dimensions so the dataset
// exercises the pruning regime the paper assigns to this workload.

#ifndef SEEDB_DATA_MEDICAL_H_
#define SEEDB_DATA_MEDICAL_H_

#include "data/dataset.h"
#include "util/result.h"

namespace seedb::data {

struct MedicalSpec {
  size_t rows = 40000;
  /// Extra near-constant "administrative flag" dimensions appended to widen
  /// the schema (each is ~97% a single value — variance-pruning bait).
  size_t extra_flag_dims = 6;
  uint64_t seed = 13;
};

/// Generates the medical demo dataset. Schema:
///   dimensions: diagnosis, ward, sex, age_band, insurance, admission_type
///               [+ flag0..flagN]
///   measures:   length_of_stay, lab_glucose, heart_rate, total_cost
Result<DemoDataset> MakeMedical(const MedicalSpec& spec = {});

}  // namespace seedb::data

#endif  // SEEDB_DATA_MEDICAL_H_
