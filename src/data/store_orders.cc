#include "data/store_orders.h"

#include <array>
#include <cmath>

#include "util/random.h"

namespace seedb::data {
namespace {

constexpr std::array<const char*, 3> kCategories = {"Furniture",
                                                    "Office Supplies",
                                                    "Technology"};
// Sub-categories per category (4 each).
constexpr std::array<std::array<const char*, 4>, 3> kSubCategories = {{
    {"Chairs", "Tables", "Bookcases", "Furnishings"},
    {"Paper", "Binders", "Storage", "Labels"},
    {"Phones", "Machines", "Accessories", "Copiers"},
}};
constexpr std::array<const char*, 4> kRegions = {"East", "West", "Central",
                                                 "South"};
constexpr std::array<const char*, 8> kStores = {
    "Cambridge, MA", "New York, NY",   "San Francisco, CA", "Seattle, WA",
    "Chicago, IL",   "Austin, TX",     "Denver, CO",        "Atlanta, GA"};
// Region of each store, aligned with kStores (correlated dimensions: store
// determines region — fodder for correlation pruning).
constexpr std::array<size_t, 8> kStoreRegion = {0, 0, 1, 1, 2, 3, 2, 3};
constexpr std::array<const char*, 3> kSegments = {"Consumer", "Corporate",
                                                  "Home Office"};
constexpr std::array<const char*, 4> kShipModes = {
    "Standard", "Second Class", "First Class", "Same Day"};
constexpr std::array<const char*, 4> kPriorities = {"Low", "Medium", "High",
                                                    "Critical"};
// Products per category (5 each) + the paper's Laserwave/Saberwave ovens in
// Technology.
constexpr std::array<std::array<const char*, 5>, 3> kProducts = {{
    {"Oak Desk", "Swivel Chair", "Pine Bookcase", "Floor Lamp", "Area Rug"},
    {"Copy Paper", "Ring Binder", "File Cabinet", "Label Maker", "Stapler"},
    {"Laserwave Oven", "Saberwave Oven", "SmartPhone X", "Laser Printer",
     "Noise-cancel Headset"},
}};

}  // namespace

Result<DemoDataset> MakeStoreOrders(const StoreOrdersSpec& spec) {
  db::Schema schema;
  for (const char* dim :
       {"product", "category", "sub_category", "region", "store", "segment",
        "ship_mode", "order_priority"}) {
    SEEDB_RETURN_IF_ERROR(schema.AddColumn(db::ColumnDef::Dimension(dim)));
  }
  for (const char* m : {"sales", "quantity", "discount", "profit"}) {
    SEEDB_RETURN_IF_ERROR(schema.AddColumn(db::ColumnDef::Measure(m)));
  }

  DemoDataset dataset{db::Table(schema)};
  dataset.table_name = "orders";
  Random rng(spec.seed);

  for (size_t row = 0; row < spec.rows; ++row) {
    size_t cat = rng.Uniform(kCategories.size());
    // Planted: Laserwave Oven (product 0 in Technology) sells mostly in two
    // stores. Draw product, then bias store choice for it below.
    size_t product = rng.Uniform(5);
    // A product belongs to exactly one sub-category (attribute hierarchy:
    // product -> sub_category -> category).
    size_t sub = product % 4;
    size_t store;
    bool is_laserwave = (cat == 2 && product == 0);
    if (is_laserwave && rng.Bernoulli(0.7)) {
      store = rng.Bernoulli(0.6) ? 0 : 3;  // Cambridge or Seattle
    } else {
      store = rng.Uniform(kStores.size());
    }
    size_t region = kStoreRegion[store];
    // Planted: Technology skews to the Corporate segment.
    size_t segment;
    if (cat == 2 && rng.Bernoulli(0.6)) {
      segment = 1;
    } else {
      segment = rng.Uniform(kSegments.size());
    }
    size_t ship = rng.Uniform(kShipModes.size());
    size_t priority = rng.Uniform(kPriorities.size());

    double base_price =
        cat == 2 ? 400.0 : (cat == 0 ? 250.0 : 40.0);  // tech > furniture > supplies
    double sales = std::abs(rng.Gaussian(base_price, base_price * 0.4)) + 5.0;
    double quantity = static_cast<double>(1 + rng.Uniform(13));
    double discount = rng.Bernoulli(0.3) ? rng.UniformDouble(0.1, 0.6) : 0.0;
    double margin = rng.Gaussian(0.12, 0.06);
    // Planted: Furniture in Central runs at a steep loss.
    if (cat == 0 && region == 2) {
      margin = rng.Gaussian(-0.35, 0.08);
    }
    double profit = sales * quantity * (margin - discount * 0.25);
    sales *= quantity;

    SEEDB_RETURN_IF_ERROR(dataset.table.AppendRow({
        db::Value(kProducts[cat][product]),
        db::Value(kCategories[cat]),
        db::Value(kSubCategories[cat][sub]),
        db::Value(kRegions[region]),
        db::Value(kStores[store]),
        db::Value(kSegments[segment]),
        db::Value(kShipModes[ship]),
        db::Value(kPriorities[priority]),
        db::Value(sales),
        db::Value(quantity),
        db::Value(discount),
        db::Value(profit),
    }));
  }

  dataset.trends = {
      {"Furniture runs at a loss in the Central region",
       "SELECT * FROM orders WHERE category = 'Furniture'", "region",
       "profit"},
      {"Technology sales concentrate in the Corporate segment",
       "SELECT * FROM orders WHERE category = 'Technology'", "segment",
       "sales"},
      {"Laserwave Oven sales concentrate in two stores (the paper's §1 "
       "running example)",
       "SELECT * FROM orders WHERE product = 'Laserwave Oven'", "store",
       "sales"},
  };
  return dataset;
}

}  // namespace seedb::data
