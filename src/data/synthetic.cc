#include "data/synthetic.h"

#include <cmath>

#include "util/random.h"
#include "util/string_util.h"

namespace seedb::data {

std::string DimensionValueName(const std::string& dim, size_t j) {
  return StringPrintf("%s_v%zu", dim.c_str(), j);
}

SyntheticSpec SyntheticSpec::Simple(size_t rows, size_t num_dims,
                                    size_t num_measures, size_t cardinality,
                                    uint64_t seed) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.seed = seed;
  spec.dimensions.reserve(num_dims);
  for (size_t i = 0; i < num_dims; ++i) {
    DimensionSpec d;
    d.name = StringPrintf("dim%zu", i);
    d.cardinality = cardinality;
    spec.dimensions.push_back(std::move(d));
  }
  spec.measures.reserve(num_measures);
  for (size_t i = 0; i < num_measures; ++i) {
    MeasureSpec m;
    m.name = StringPrintf("m%zu", i);
    m.mean = 100.0 + 10.0 * static_cast<double>(i);
    m.stddev = 15.0;
    spec.measures.push_back(std::move(m));
  }
  if (num_dims >= 2 && num_measures >= 1) {
    PlantedDeviation dev;
    dev.selector_dim = 0;
    dev.selector_value_index = 0;
    dev.deviating_dim = 1;
    dev.measure_index = 0;
    dev.strength = 5.0;
    spec.deviation = dev;
  }
  return spec;
}

namespace {

double SampleMeasure(const MeasureSpec& m, Random* rng) {
  switch (m.distribution) {
    case MeasureSpec::Dist::kGaussian:
      return rng->Gaussian(m.mean, m.stddev);
    case MeasureSpec::Dist::kUniform:
      return rng->UniformDouble(m.lo, m.hi);
    case MeasureSpec::Dist::kExponential: {
      double u;
      do {
        u = rng->NextDouble();
      } while (u <= 1e-300);
      return -std::log(u) / m.rate;
    }
  }
  return 0.0;
}

Status ValidateSpec(const SyntheticSpec& spec) {
  if (spec.dimensions.empty()) {
    return Status::InvalidArgument("spec needs at least one dimension");
  }
  if (spec.measures.empty()) {
    return Status::InvalidArgument("spec needs at least one measure");
  }
  for (const auto& d : spec.dimensions) {
    if (d.cardinality == 0) {
      return Status::InvalidArgument("dimension '" + d.name +
                                     "' has zero cardinality");
    }
    if (d.correlated_with >= 0 &&
        static_cast<size_t>(d.correlated_with) >= spec.dimensions.size()) {
      return Status::InvalidArgument("dimension '" + d.name +
                                     "' correlates with missing dimension");
    }
  }
  if (spec.deviation) {
    const PlantedDeviation& dev = *spec.deviation;
    if (dev.selector_dim >= spec.dimensions.size() ||
        dev.deviating_dim >= spec.dimensions.size() ||
        dev.measure_index >= spec.measures.size()) {
      return Status::InvalidArgument("planted deviation indexes out of range");
    }
    if (dev.selector_dim == dev.deviating_dim) {
      return Status::InvalidArgument(
          "selector and deviating dimension must differ");
    }
    if (dev.selector_value_index >=
        spec.dimensions[dev.selector_dim].cardinality) {
      return Status::InvalidArgument("selector value index out of range");
    }
    if (spec.dimensions[dev.deviating_dim].cardinality < 2) {
      return Status::InvalidArgument(
          "deviating dimension needs cardinality >= 2");
    }
  }
  return Status::OK();
}

}  // namespace

Result<SyntheticDataset> GenerateSynthetic(const SyntheticSpec& spec) {
  SEEDB_RETURN_IF_ERROR(ValidateSpec(spec));

  db::Schema schema;
  for (const auto& d : spec.dimensions) {
    SEEDB_RETURN_IF_ERROR(
        schema.AddColumn(db::ColumnDef::Dimension(d.name)));
  }
  for (const auto& m : spec.measures) {
    SEEDB_RETURN_IF_ERROR(schema.AddColumn(db::ColumnDef::Measure(m.name)));
  }

  Random rng(spec.seed);
  std::vector<ZipfDistribution> zipfs;
  std::vector<const ZipfDistribution*> zipf_for_dim(spec.dimensions.size(),
                                                    nullptr);
  for (size_t d = 0; d < spec.dimensions.size(); ++d) {
    if (spec.dimensions[d].distribution == DimensionSpec::Dist::kZipf) {
      zipfs.emplace_back(spec.dimensions[d].cardinality,
                         spec.dimensions[d].zipf_s);
    }
  }
  // Second pass to take stable pointers (vector finished growing).
  {
    size_t zi = 0;
    for (size_t d = 0; d < spec.dimensions.size(); ++d) {
      if (spec.dimensions[d].distribution == DimensionSpec::Dist::kZipf) {
        zipf_for_dim[d] = &zipfs[zi++];
      }
    }
  }

  SyntheticDataset dataset{db::Table(schema)};
  std::vector<size_t> dim_value_idx(spec.dimensions.size(), 0);
  for (size_t row = 0; row < spec.rows; ++row) {
    // Dimensions first (correlated dims may reference earlier ones).
    for (size_t d = 0; d < spec.dimensions.size(); ++d) {
      const DimensionSpec& ds = spec.dimensions[d];
      size_t v;
      if (ds.correlated_with >= 0 &&
          static_cast<size_t>(ds.correlated_with) < d &&
          !rng.Bernoulli(ds.correlation_noise)) {
        // Deterministic mapping from the source dimension's value.
        v = dim_value_idx[static_cast<size_t>(ds.correlated_with)] %
            ds.cardinality;
      } else if (zipf_for_dim[d] != nullptr) {
        v = zipf_for_dim[d]->Sample(&rng);
      } else {
        v = static_cast<size_t>(rng.Uniform(ds.cardinality));
      }
      dim_value_idx[d] = v;
    }

    std::vector<db::Value> values;
    values.reserve(schema.num_columns());
    for (size_t d = 0; d < spec.dimensions.size(); ++d) {
      values.emplace_back(
          DimensionValueName(spec.dimensions[d].name, dim_value_idx[d]));
    }
    for (size_t m = 0; m < spec.measures.size(); ++m) {
      double v = SampleMeasure(spec.measures[m], &rng);
      if (spec.deviation) {
        const PlantedDeviation& dev = *spec.deviation;
        bool selected =
            dim_value_idx[dev.selector_dim] == dev.selector_value_index;
        bool odd_group = (dim_value_idx[dev.deviating_dim] % 2) == 1;
        if (m == dev.measure_index && selected && odd_group) {
          v *= dev.strength;
        }
      }
      values.emplace_back(v);
    }
    SEEDB_RETURN_IF_ERROR(dataset.table.AppendRow(values));
  }

  if (spec.deviation) {
    const PlantedDeviation& dev = *spec.deviation;
    const std::string& sel_dim = spec.dimensions[dev.selector_dim].name;
    dataset.selector_value =
        DimensionValueName(sel_dim, dev.selector_value_index);
    dataset.selection =
        db::PredicatePtr(db::Eq(sel_dim, db::Value(dataset.selector_value)));
    dataset.expected_dimension = spec.dimensions[dev.deviating_dim].name;
    dataset.expected_measure = spec.measures[dev.measure_index].name;
  }
  return dataset;
}

}  // namespace seedb::data
