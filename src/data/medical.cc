#include "data/medical.h"

#include <array>
#include <cmath>

#include "util/random.h"
#include "util/string_util.h"

namespace seedb::data {
namespace {

constexpr std::array<const char*, 12> kDiagnoses = {
    "Sepsis",        "Pneumonia",   "Heart Failure", "COPD",
    "Renal Failure", "Stroke",      "GI Bleed",      "Diabetes",
    "Trauma",        "Arrhythmia",  "Cellulitis",    "Pancreatitis"};
constexpr std::array<const char*, 6> kWards = {"MICU", "SICU", "CCU",
                                               "Med-Surg", "Telemetry",
                                               "Step-Down"};
constexpr std::array<const char*, 2> kSex = {"F", "M"};
constexpr std::array<const char*, 6> kAgeBands = {"18-29", "30-44", "45-59",
                                                  "60-69", "70-79", "80+"};
constexpr std::array<const char*, 4> kInsurance = {"Medicare", "Private",
                                                   "Medicaid", "Self-Pay"};
constexpr std::array<const char*, 3> kAdmissionTypes = {"Emergency",
                                                        "Elective", "Urgent"};

}  // namespace

Result<DemoDataset> MakeMedical(const MedicalSpec& spec) {
  db::Schema schema;
  for (const char* dim : {"diagnosis", "ward", "sex", "age_band", "insurance",
                          "admission_type"}) {
    SEEDB_RETURN_IF_ERROR(schema.AddColumn(db::ColumnDef::Dimension(dim)));
  }
  for (size_t i = 0; i < spec.extra_flag_dims; ++i) {
    SEEDB_RETURN_IF_ERROR(schema.AddColumn(
        db::ColumnDef::Dimension(StringPrintf("flag%zu", i))));
  }
  for (const char* m :
       {"length_of_stay", "lab_glucose", "heart_rate", "total_cost"}) {
    SEEDB_RETURN_IF_ERROR(schema.AddColumn(db::ColumnDef::Measure(m)));
  }

  DemoDataset dataset{db::Table(schema)};
  dataset.table_name = "admissions";
  Random rng(spec.seed);
  ZipfDistribution diagnosis_zipf(kDiagnoses.size(), 0.6);

  for (size_t row = 0; row < spec.rows; ++row) {
    size_t diagnosis = diagnosis_zipf.Sample(&rng);
    bool is_sepsis = diagnosis == 0;
    bool is_diabetes = diagnosis == 7;
    // Planted: sepsis admissions concentrate in the ICUs.
    size_t ward;
    if (is_sepsis && rng.Bernoulli(0.7)) {
      ward = rng.Bernoulli(0.6) ? 0 : 1;  // MICU / SICU
    } else {
      ward = rng.Uniform(kWards.size());
    }
    size_t sex = rng.Uniform(kSex.size());
    // Planted: diabetes admissions skew strongly toward older age bands (a
    // shape change in the age distribution, so it survives normalization).
    size_t age;
    if (is_diabetes && rng.Bernoulli(0.75)) {
      age = 3 + rng.Uniform(3);  // 60-69 / 70-79 / 80+
    } else {
      age = rng.Uniform(kAgeBands.size());
    }
    size_t insurance =
        age >= 3 && rng.Bernoulli(0.6) ? 0 : rng.Uniform(kInsurance.size());
    // Sepsis and trauma arrive mostly (not exclusively) as emergencies.
    size_t admission;
    if ((is_sepsis && rng.Bernoulli(0.75)) ||
        (diagnosis == 8 && rng.Bernoulli(0.9))) {
      admission = 0;
    } else {
      admission = rng.Uniform(kAdmissionTypes.size());
    }

    double los = std::exp(rng.Gaussian(1.2, 0.6));  // days, log-normal
    if (is_sepsis && (ward == 0 || ward == 1)) los *= 3.0;  // long ICU stays
    double glucose = rng.Gaussian(105.0, 20.0);
    if (is_diabetes) glucose = rng.Gaussian(190.0, 45.0);  // planted
    double heart_rate = rng.Gaussian(82.0, 12.0);
    if (is_sepsis) heart_rate = rng.Gaussian(105.0, 15.0);
    double cost = los * std::abs(rng.Gaussian(2400.0, 600.0)) +
                  (ward <= 2 ? 5000.0 : 1000.0);

    std::vector<db::Value> values = {
        db::Value(kDiagnoses[diagnosis]), db::Value(kWards[ward]),
        db::Value(kSex[sex]),             db::Value(kAgeBands[age]),
        db::Value(kInsurance[insurance]), db::Value(kAdmissionTypes[admission]),
    };
    for (size_t i = 0; i < spec.extra_flag_dims; ++i) {
      // Near-constant flags: ~97% "no".
      values.emplace_back(rng.Bernoulli(0.03) ? "yes" : "no");
    }
    values.emplace_back(los);
    values.emplace_back(glucose);
    values.emplace_back(heart_rate);
    values.emplace_back(cost);
    SEEDB_RETURN_IF_ERROR(dataset.table.AppendRow(values));
  }

  dataset.trends = {
      {"Sepsis stays are far longer in the ICUs",
       "SELECT * FROM admissions WHERE diagnosis = 'Sepsis'", "ward",
       "length_of_stay"},
      {"Diabetes admissions skew toward older age bands",
       "SELECT * FROM admissions WHERE diagnosis = 'Diabetes'", "age_band",
       "total_cost"},
  };
  return dataset;
}

}  // namespace seedb::data
