// Election Contributions: a synthetic stand-in for the FEC presidential
// campaign-finance dataset (§4, [1]) — "an example of a dataset typically
// analyzed by non-expert data analysts like journalists or historians".
//
// Schema properties mirrored from the real extract:
//   * candidate determines party (strongly correlated dimensions — the
//     correlation pruner should cluster them),
//   * contribution amounts are heavy-tailed,
//   * planted trends give ground truth for recommendation tests.

#ifndef SEEDB_DATA_ELECTIONS_H_
#define SEEDB_DATA_ELECTIONS_H_

#include "data/dataset.h"
#include "util/result.h"

namespace seedb::data {

struct ElectionsSpec {
  size_t rows = 30000;
  uint64_t seed = 11;
};

/// Generates the election-contributions demo dataset. Schema:
///   dimensions: candidate, party, contributor_state, occupation,
///               contribution_type
///   measures:   amount
Result<DemoDataset> MakeElections(const ElectionsSpec& spec = {});

}  // namespace seedb::data

#endif  // SEEDB_DATA_ELECTIONS_H_
