#include "data/elections.h"

#include <array>
#include <cmath>

#include "util/random.h"

namespace seedb::data {
namespace {

constexpr std::array<const char*, 6> kCandidates = {
    "A. Hartman", "B. Okafor", "C. Reyes", "D. Lindqvist", "E. Zhao",
    "F. Moreau"};
// Party of each candidate (correlated pair: candidate -> party).
constexpr std::array<const char*, 6> kCandidateParty = {
    "Blue", "Blue", "Red", "Red", "Green", "Blue"};
constexpr std::array<const char*, 15> kStates = {
    "CA", "TX", "NY", "FL", "IL", "PA", "OH", "GA", "NC", "MI",
    "WA", "MA", "AZ", "CO", "VA"};
constexpr std::array<const char*, 8> kOccupations = {
    "Retired",  "Engineer", "Attorney", "Physician",
    "Educator", "Executive", "Homemaker", "Artist"};
constexpr std::array<const char*, 3> kTypes = {"Individual", "PAC",
                                               "Party Committee"};

}  // namespace

Result<DemoDataset> MakeElections(const ElectionsSpec& spec) {
  db::Schema schema;
  for (const char* dim : {"candidate", "party", "contributor_state",
                          "occupation", "contribution_type"}) {
    SEEDB_RETURN_IF_ERROR(schema.AddColumn(db::ColumnDef::Dimension(dim)));
  }
  SEEDB_RETURN_IF_ERROR(schema.AddColumn(db::ColumnDef::Measure("amount")));

  DemoDataset dataset{db::Table(schema)};
  dataset.table_name = "contributions";
  Random rng(spec.seed);
  ZipfDistribution state_zipf(kStates.size(), 0.8);  // CA/TX/NY dominate

  for (size_t row = 0; row < spec.rows; ++row) {
    size_t cand = rng.Uniform(kCandidates.size());
    size_t state;
    // Planted: C. Reyes draws contributions overwhelmingly from TX.
    if (cand == 2 && rng.Bernoulli(0.6)) {
      state = 1;  // TX
    } else {
      state = state_zipf.Sample(&rng);
    }
    size_t occupation = rng.Uniform(kOccupations.size());
    // Planted: E. Zhao is PAC-funded; others mostly individual donors.
    size_t type;
    if (cand == 4 && rng.Bernoulli(0.55)) {
      type = 1;
    } else {
      type = rng.Bernoulli(0.85) ? 0 : rng.Uniform(kTypes.size());
    }

    // Heavy-tailed amounts: log-normal individual gifts, PACs 10x larger.
    double amount = std::exp(rng.Gaussian(4.2, 1.1));
    if (type == 1) amount *= 10.0;
    if (type == 2) amount *= 4.0;
    // Planted: Executives give disproportionately to D. Lindqvist.
    if (cand == 3 && occupation == 5) amount *= 6.0;

    SEEDB_RETURN_IF_ERROR(dataset.table.AppendRow({
        db::Value(kCandidates[cand]),
        db::Value(kCandidateParty[cand]),
        db::Value(kStates[state]),
        db::Value(kOccupations[occupation]),
        db::Value(kTypes[type]),
        db::Value(amount),
    }));
  }

  dataset.trends = {
      {"C. Reyes's funding concentrates in Texas",
       "SELECT * FROM contributions WHERE candidate = 'C. Reyes'",
       "contributor_state", "amount"},
      {"E. Zhao is disproportionately PAC-funded",
       "SELECT * FROM contributions WHERE candidate = 'E. Zhao'",
       "contribution_type", "amount"},
      {"Executives bankroll D. Lindqvist",
       "SELECT * FROM contributions WHERE candidate = 'D. Lindqvist'",
       "occupation", "amount"},
  };
  return dataset;
}

}  // namespace seedb::data
