#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <thread>

namespace seedb::obs {

uint64_t BucketUpperBoundUs(size_t i) {
  // Buckets 0..25 end at 2^0 .. 2^25 us; the overflow bucket (26) is
  // unbounded and reports the last finite boundary.
  const size_t capped = std::min(i, kHistogramBuckets - 2);
  return uint64_t{1} << capped;
}

namespace internal {
size_t ThisThreadSlot() {
  thread_local const size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kMetricSlots;
  return slot;
}
}  // namespace internal

size_t Histogram::BucketIndex(uint64_t value_us) {
  // Bucket i covers (2^(i-1), 2^i] us; bucket 0 covers [0, 1] us.
  size_t i = 0;
  while (i < kHistogramBuckets - 1 && value_us > BucketUpperBoundUs(i)) ++i;
  return i;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum_us += s.sum_us.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      s.buckets[b].store(0, std::memory_order_relaxed);
    }
    s.count.store(0, std::memory_order_relaxed);
    s.sum_us.store(0, std::memory_order_relaxed);
  }
}

uint64_t HistogramSnapshot::QuantileUs(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile observation, 1-based (nearest-rank method).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count) + 0.5));
  uint64_t seen = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) return BucketUpperBoundUs(b);
  }
  return BucketUpperBoundUs(kHistogramBuckets - 1);
}

Registry& Registry::Global() {
  static Registry* g = new Registry();  // never destroyed
  return *g;
}

Counter* Registry::GetCounter(std::string_view name) {
  base::MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  base::MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name) {
  base::MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot snap;
  base::MutexLock lock(&mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back({name, h->Snapshot()});
  }
  return snap;
}

void Registry::Reset() {
  base::MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

namespace {
void AppendHistogramLine(const std::string& name,
                         const HistogramSnapshot& h, std::string* out) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s count=%" PRIu64 " mean_us=%.1f p50_us=%" PRIu64
                " p95_us=%" PRIu64 " p99_us=%" PRIu64 "\n",
                name.c_str(), h.count, h.MeanUs(), h.QuantileUs(0.50),
                h.QuantileUs(0.95), h.QuantileUs(0.99));
  *out += buf;
}
}  // namespace

std::string Snapshot::ToString() const {
  std::string out;
  char buf[192];
  if (!counters.empty()) {
    out += "counters:\n";
    for (const CounterValue& c : counters) {
      std::snprintf(buf, sizeof(buf), "  %s = %" PRIu64 "\n", c.name.c_str(),
                    c.value);
      out += buf;
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const GaugeValue& g : gauges) {
      std::snprintf(buf, sizeof(buf), "  %s = %" PRId64 "\n", g.name.c_str(),
                    g.value);
      out += buf;
    }
  }
  if (!histograms.empty()) {
    out += "histograms:\n";
    for (const HistogramValue& h : histograms) {
      out += "  ";
      AppendHistogramLine(h.name, h.snapshot, &out);
    }
  }
  if (out.empty()) out = "(no metrics registered)\n";
  return out;
}

std::string Snapshot::ToOneLine() const {
  std::string out = "metrics:";
  char buf[192];
  for (const CounterValue& c : counters) {
    std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, c.name.c_str(), c.value);
    out += buf;
  }
  for (const GaugeValue& g : gauges) {
    std::snprintf(buf, sizeof(buf), " %s=%" PRId64, g.name.c_str(), g.value);
    out += buf;
  }
  for (const HistogramValue& h : histograms) {
    std::snprintf(buf, sizeof(buf),
                  " %s{count=%" PRIu64 ",p50=%" PRIu64 ",p99=%" PRIu64 "}",
                  h.name.c_str(), h.snapshot.count, h.snapshot.QuantileUs(0.5),
                  h.snapshot.QuantileUs(0.99));
    out += buf;
  }
  return out;
}

}  // namespace seedb::obs
