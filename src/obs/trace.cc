#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"

namespace seedb::obs {

std::atomic<bool> TraceRecorder::enabled_{false};
std::atomic<bool> TraceRecorder::trace_all_{false};

namespace {

// Recorder state. One process-wide file; the mutex serializes appends,
// which also keeps each event's JSON intact. Writes go through the stdio
// buffer, so a span costs a short lock + buffered formatting, not a
// syscall.
base::Mutex g_mu;
FILE* g_file GUARDED_BY(g_mu) = nullptr;
bool g_first_event GUARDED_BY(g_mu) = true;
uint64_t g_event_count GUARDED_BY(g_mu) = 0;
uint64_t g_start_us GUARDED_BY(g_mu) = 0;

// Small stable per-thread ids (1, 2, 3, ...) so traces are readable and
// tools/validate_trace.py can group events by thread.
std::atomic<uint64_t> g_next_tid{1};
uint64_t ThisThreadTraceId() {
  thread_local const uint64_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void EmitEvent(char phase, const char* name, uint64_t session) {
  const uint64_t tid = ThisThreadTraceId();
  const uint64_t now_us = SteadyNowUs();
  base::MutexLock lock(&g_mu);
  if (g_file == nullptr) return;  // raced StopGlobal; drop the event
  const uint64_t ts = now_us >= g_start_us ? now_us - g_start_us : 0;
  if (!g_first_event) std::fputs(",\n", g_file);
  g_first_event = false;
  if (session != 0) {
    std::fprintf(g_file,
                 "{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%" PRIu64
                 ",\"pid\":1,\"tid\":%" PRIu64
                 ",\"args\":{\"session\":%" PRIu64 "}}",
                 name, phase, ts, tid, session);
  } else {
    std::fprintf(g_file,
                 "{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%" PRIu64
                 ",\"pid\":1,\"tid\":%" PRIu64 "}",
                 name, phase, ts, tid);
  }
  ++g_event_count;
}

}  // namespace

Status TraceRecorder::StartGlobal(const std::string& path,
                                  bool trace_all_sessions) {
  base::MutexLock lock(&g_mu);
  if (g_file != nullptr) {
    return Status::AlreadyExists("trace recorder already active");
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file: " + path);
  }
  std::fputs("[\n", f);
  g_file = f;
  g_first_event = true;
  g_event_count = 0;
  g_start_us = SteadyNowUs();
  trace_all_.store(trace_all_sessions, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

void TraceRecorder::StopGlobal() {
  // Flip the fast-path flag first so new spans stop enqueueing; in-flight
  // EmitEvent calls either land before the close below or see the null
  // file and drop.
  enabled_.store(false, std::memory_order_release);
  base::MutexLock lock(&g_mu);
  if (g_file == nullptr) return;
  std::fputs("\n]\n", g_file);
  std::fclose(g_file);
  g_file = nullptr;
  trace_all_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::EmitBegin(const char* name, uint64_t session) {
  EmitEvent('B', name, session);
}

void TraceRecorder::EmitEnd(const char* name, uint64_t session) {
  EmitEvent('E', name, session);
}

uint64_t TraceRecorder::EventCount() {
  base::MutexLock lock(&g_mu);
  return g_event_count;
}

}  // namespace seedb::obs
