// Lightweight trace-span recorder emitting Chrome trace-event JSON.
//
// Spans wrap the phases that matter — session lifecycle (open / next-phase
// / finalize), shared-scan phases and per-worker merge steps, server
// request dispatch — and the output file loads directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Events are the classic
// B/E (duration begin/end) form:
//
//   {"name":"scan.phase","ph":"B","ts":123,"pid":1,"tid":7,
//    "args":{"session":3}}
//
// Timestamps are steady-clock microseconds relative to recorder start
// (never system_clock — trace order must survive wall-clock jumps), and
// each event is written at the moment it happens, so events are
// ts-monotonic per thread in file order (tools/validate_trace.py checks
// this, plus begin/end balance).
//
// Cost model: when no recorder is active, a span is one relaxed atomic
// load and two branches. When SEEDB_DISABLE_TRACING is defined the
// SEEDB_TRACE_SPAN macros compile to nothing at all. When recording, each
// event takes a short critical section to append to the output file's
// stdio buffer — spans are phase/request granularity, so this never sits
// on a morsel-level hot path.
//
// Enablement is two-level:
//   * process: TraceRecorder::StartGlobal(path, trace_all_sessions)
//     (the seedb_server --trace-out flag passes trace_all_sessions=true);
//   * session: SeeDBRequest::WithTrace(true) (wire: OpenSpec.trace) marks
//     one session's engine-side spans recordable even when
//     trace_all_sessions is false.
// Server dispatch spans follow trace_all_sessions; engine/session spans
// emit when ShouldTrace(session_traced) says so.

#ifndef SEEDB_OBS_TRACE_H_
#define SEEDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "base/mutex.h"
#include "util/status.h"

namespace seedb::obs {

/// \brief Process-wide Chrome trace-event recorder. All methods are
/// thread-safe; Emit* are no-ops while no recorder is active.
class TraceRecorder {
 public:
  /// Opens `path` and starts recording. `trace_all_sessions` makes every
  /// session's spans recordable regardless of their per-session flag.
  /// Errors if a recorder is already active or the file cannot be opened.
  static Status StartGlobal(const std::string& path, bool trace_all_sessions);

  /// Flushes, closes the file (terminating the JSON array), and stops.
  /// No-op when not recording.
  static void StopGlobal();

  /// A recorder is active.
  static bool Enabled() {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Should engine/session-level spans for a session with per-session
  /// trace flag `session_traced` be recorded right now?
  static bool ShouldTrace(bool session_traced) {
    return Enabled() &&
           (session_traced || trace_all_.load(std::memory_order_relaxed));
  }

  /// Emits a begin/end event pair marker. `session` 0 = no session arg.
  /// `name` must outlive the call (string literals at every call site).
  static void EmitBegin(const char* name, uint64_t session);
  static void EmitEnd(const char* name, uint64_t session);

  /// Events written since StartGlobal (for tests; 0 when not recording).
  static uint64_t EventCount();

 private:
  static std::atomic<bool> enabled_;
  static std::atomic<bool> trace_all_;
};

/// \brief RAII span: emits B on construction, E on destruction, when
/// `record` is true and a recorder is active. The common disabled path is
/// one relaxed load. `name` must be a string literal.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, uint64_t session = 0,
                     bool record = true)
      : name_(nullptr) {
    if (record && TraceRecorder::Enabled()) {
      name_ = name;
      session_ = session;
      TraceRecorder::EmitBegin(name_, session_);
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) TraceRecorder::EmitEnd(name_, session_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  uint64_t session_ = 0;
};

// Span macros: the only spellings instrumentation sites should use, so a
// build with SEEDB_DISABLE_TRACING compiles every span to nothing.
#ifdef SEEDB_DISABLE_TRACING
#define SEEDB_TRACE_SPAN(var, name, session) \
  do {                                       \
  } while (false)
#define SEEDB_TRACE_SPAN_IF(var, name, session, cond) \
  do {                                                \
  } while (false)
#else
/// Unconditional span (recorded whenever a recorder is active).
#define SEEDB_TRACE_SPAN(var, name, session) \
  ::seedb::obs::TraceSpan var((name), (session))
/// Span gated on a per-session condition (TraceRecorder::ShouldTrace).
#define SEEDB_TRACE_SPAN_IF(var, name, session, cond) \
  ::seedb::obs::TraceSpan var((name), (session), (cond))
#endif

}  // namespace seedb::obs

#endif  // SEEDB_OBS_TRACE_H_
