// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms with near-zero hot-path cost.
//
// Hot-path writes never take a lock: every Counter/Histogram is sharded
// into cache-line-padded per-thread slots (thread id hashed to a slot once,
// cached thread_local), and a write is a single relaxed fetch_add on one
// slot. Readers merge the slots on demand — totals are exact because every
// increment lands in exactly one slot. The registry's name->instrument map
// is behind an annotated base::Mutex, but call sites look an instrument up
// once (function-local static) and keep the pointer: instruments are never
// destroyed, so the pointer stays valid for the life of the process.
//
// Histograms use fixed log-spaced bucket boundaries in microseconds
// (1us, 2us, 4us, ... ~67s, +overflow), so p50/p95/p99 are computed
// deterministically from the bucket counts — the reported quantile is the
// upper boundary of the bucket the rank falls in, an upper bound on the
// true quantile that is exact to within one bucket (<= 2x).
//
// Convention: histogram names end in `_us` and observe microseconds;
// counters are monotonic event counts; gauges are instantaneous values.
// New subsystem counters must go through this registry (CONTRIBUTING.md),
// not bare atomics, so `\metrics`, the `metrics` wire request, and
// --metrics-dump-sec see them for free.

#ifndef SEEDB_OBS_METRICS_H_
#define SEEDB_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/mutex.h"

namespace seedb::obs {

/// Per-thread write shards. A power of two so the slot hash is a mask.
inline constexpr size_t kMetricSlots = 16;

/// Histogram bucket count: boundaries 2^0 .. 2^25 microseconds (~67s),
/// plus one overflow bucket.
inline constexpr size_t kHistogramBuckets = 27;

/// Upper boundary (inclusive) of histogram bucket `i`, in microseconds.
/// The last bucket is unbounded; its reported boundary is the previous
/// boundary (quantiles landing there are reported as ">= 2^25 us").
uint64_t BucketUpperBoundUs(size_t i);

namespace internal {
/// Index of this thread's write slot (hashed thread id, cached).
size_t ThisThreadSlot();
}  // namespace internal

/// \brief Monotonic event counter, sharded per thread.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta = 1) {
    slots_[internal::ThisThreadSlot()].v.fetch_add(delta,
                                                   std::memory_order_relaxed);
  }

  /// Exact merged total across all slots.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  Slot slots_[kMetricSlots];
};

/// \brief Instantaneous signed value (set wins; Add for deltas).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Merged read-side view of one histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum_us = 0;
  uint64_t buckets[kHistogramBuckets] = {};

  /// Quantile in [0,1] -> upper boundary (us) of the bucket holding that
  /// rank; 0 when empty. Deterministic: derived from bucket counts only.
  uint64_t QuantileUs(double q) const;
  double MeanUs() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_us) / count;
  }
};

/// \brief Fixed-bucket latency histogram (microseconds), sharded per thread.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value_us) {
    Shard& s = shards_[internal::ThisThreadSlot()];
    s.buckets[BucketIndex(value_us)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum_us.fetch_add(value_us, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;
  void Reset();

  /// Bucket index for a value: floor(log2(v)) clamped to the table.
  static size_t BucketIndex(uint64_t value_us);

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kHistogramBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_us{0};
  };
  Shard shards_[kMetricSlots];
};

/// One named instrument inside a Snapshot.
struct CounterValue {
  std::string name;
  uint64_t value = 0;
};
struct GaugeValue {
  std::string name;
  int64_t value = 0;
};
struct HistogramValue {
  std::string name;
  HistogramSnapshot snapshot;
};

/// \brief Point-in-time merged view of every registered instrument,
/// name-sorted. Plain data: the server layer renders it to JSON, the CLI
/// and --metrics-dump-sec render it to text.
struct Snapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Multi-line human-readable dump (CLI `\metrics`).
  std::string ToString() const;
  /// Single-line key=value dump (--metrics-dump-sec stderr line).
  std::string ToOneLine() const;
};

/// \brief Process-wide instrument registry.
///
/// GetCounter/GetGauge/GetHistogram return a stable pointer for the life of
/// the process (instruments are never destroyed); call sites should look a
/// name up once and cache the pointer:
///
///   static obs::Counter* hits =
///       obs::Registry::Global().GetCounter("engine.cache.hits");
///   hits->Add();
class Registry {
 public:
  static Registry& Global();

  /// Instantiable for tests that want an isolated namespace; everything in
  /// the process shares Global() otherwise.
  Registry() = default;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Merged view of every instrument, name-sorted.
  Snapshot TakeSnapshot() const;

  /// Zeroes every instrument (registration survives). `\stats reset`.
  void Reset();

 private:
  mutable base::Mutex mu_;
  // Instruments are heap-allocated once and never freed; the maps only
  // ever grow. std::map keeps snapshot output name-sorted for free.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

/// Steady-clock microseconds since an arbitrary process-local epoch. The
/// single time source for every obs timestamp (never system_clock: wire and
/// trace timestamps must be immune to wall-clock jumps).
inline uint64_t SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// \brief RAII latency sample: observes elapsed us into `h` on destruction.
/// Accepts nullptr (no-op) so call sites can gate on a condition.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h), start_us_(SteadyNowUs()) {}
  ~ScopedTimer() {
    if (h_ != nullptr) h_->Observe(SteadyNowUs() - start_us_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  uint64_t start_us_;
};

}  // namespace seedb::obs

#endif  // SEEDB_OBS_METRICS_H_
