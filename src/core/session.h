// Streaming session API: progressive recommendations, cancellation, and
// early stop — the incremental face of the SeeDB pipeline.
//
// The blocking SeeDB::Recommend() answers one request in one shot; the
// paper's interactive frontend (Fig. 1, §3.3) instead wants partial top-k
// results while the scan runs, a way to abandon a long scan, and the list
// of views the optimizer gave up on. This module provides that:
//
//   * SeeDBRequest — builder-style request (table, selection, metric, k,
//     strategy, pruning, sampling), the primary entry point; the flat
//     SeeDBOptions struct survives as its payload and the old Recommend()
//     overloads as thin wrappers.
//   * RecommendationSession — runs the phased shared scan under caller
//     control: every Next() executes one phase and yields a ProgressUpdate
//     (provisional top-k with CI bounds, phase wall time, views pruned so
//     far, rows scanned). Cancel() is observed at morsel boundaries;
//     early-stop ends the scan once the top-k is CI-stable (§3.3 endgame);
//     Finish() assembles the final RecommendationSet, which carries the
//     online-pruned views with their partial utility estimates.
//
// One Engine serves many concurrent sessions: all per-request state lives
// in the session object.

#ifndef SEEDB_CORE_SESSION_H_
#define SEEDB_CORE_SESSION_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/seedb.h"
#include "util/timer.h"

namespace seedb::core {

/// \brief Builder-style request: what to recommend and how to execute.
///
/// Wraps a table, an analyst selection, and a SeeDBOptions payload behind
/// fluent setters, so call sites read as the request they make:
///
///   SeeDBRequest("sales")
///       .Where(db::Eq("product", db::Value("Laserwave")))
///       .WithTopK(3)
///       .WithStrategy(ExecutionStrategy::kPhasedSharedScan)
///       .WithPhases(10)
///       .WithOnlinePruner(OnlinePruner::kConfidenceInterval);
class SeeDBRequest {
 public:
  explicit SeeDBRequest(std::string table) : table_(std::move(table)) {}

  /// Parses the analyst query from SQL text, e.g.
  /// "SELECT * FROM sales WHERE product = 'Laserwave'".
  static Result<SeeDBRequest> FromSql(const std::string& input_query);

  SeeDBRequest& Where(db::PredicatePtr selection) {
    selection_ = std::move(selection);
    return *this;
  }
  SeeDBRequest& WithTopK(size_t k) {
    options_.k = k;
    return *this;
  }
  /// Also return this many lowest-utility views. Under online pruning they
  /// rank survivors only (ExecutionProfile::examined_view_count says how
  /// many views that is).
  SeeDBRequest& WithBottomK(size_t bottom_k) {
    options_.bottom_k = bottom_k;
    return *this;
  }
  SeeDBRequest& WithMetric(DistanceMetric metric) {
    options_.metric = metric;
    return *this;
  }
  SeeDBRequest& WithStrategy(ExecutionStrategy strategy) {
    options_.strategy = strategy;
    return *this;
  }
  SeeDBRequest& WithParallelism(size_t parallelism) {
    options_.parallelism = parallelism;
    return *this;
  }
  /// Phase count for kPhasedSharedScan (implied by WithPhases > 1).
  SeeDBRequest& WithPhases(size_t num_phases) {
    options_.online_pruning.num_phases = num_phases;
    options_.strategy = ExecutionStrategy::kPhasedSharedScan;
    return *this;
  }
  /// Mid-scan pruner; implies the phased strategy when not kNone.
  SeeDBRequest& WithOnlinePruner(OnlinePruner pruner) {
    options_.online_pruning.pruner = pruner;
    if (pruner != OnlinePruner::kNone) {
      options_.strategy = ExecutionStrategy::kPhasedSharedScan;
    }
    return *this;
  }
  SeeDBRequest& WithOnlinePruning(const OnlinePruningOptions& opts) {
    options_.online_pruning = opts;
    // Any phased-only knob implies the phased strategy, like WithPhases().
    if (opts.pruner != OnlinePruner::kNone ||
        opts.early_stop_stable_phases > 0 || opts.num_phases > 1) {
      options_.strategy = ExecutionStrategy::kPhasedSharedScan;
    }
    return *this;
  }
  /// Early-stop sampling: end the scan once the provisional top-k has been
  /// identical and CI-separated for `stable_phases` consecutive boundaries
  /// (see OnlinePruningOptions::early_stop_stable_phases). Implies the
  /// phased strategy.
  SeeDBRequest& WithEarlyStop(size_t stable_phases = 2) {
    options_.online_pruning.early_stop_stable_phases = stable_phases;
    options_.strategy = ExecutionStrategy::kPhasedSharedScan;
    return *this;
  }
  SeeDBRequest& WithViewSpace(const ViewSpaceOptions& view_space) {
    options_.view_space = view_space;
    return *this;
  }
  SeeDBRequest& WithStaticPruning(const PruningOptions& pruning) {
    options_.pruning = pruning;
    return *this;
  }
  SeeDBRequest& WithOptimizer(const OptimizerOptions& optimizer) {
    options_.optimizer = optimizer;
    return *this;
  }
  SeeDBRequest& WithSampling(SamplingStrategy sampling,
                             size_t sample_rows = 100000,
                             uint64_t sample_seed = 0) {
    options_.sampling = sampling;
    options_.sample_rows = sample_rows;
    options_.sample_seed = sample_seed;
    return *this;
  }
  /// Per-session cap on the run's aggregation-state footprint (bytes):
  /// the fused scan's merged state, metered at phase boundaries, or the
  /// cumulative per-query result state under kPerQuery; see
  /// SeeDBOptions::memory_budget_bytes. 0 = unlimited.
  SeeDBRequest& WithMemoryBudget(size_t budget_bytes) {
    options_.memory_budget_bytes = budget_bytes;
    return *this;
  }
  /// Mark this session's spans recordable by an active obs::TraceRecorder
  /// even when the recorder was not started with trace_all_sessions (see
  /// SeeDBOptions::trace). Wire sessions set this via OpenSpec.trace.
  SeeDBRequest& WithTrace(bool trace = true) {
    options_.trace = trace;
    return *this;
  }
  /// Wholesale replacement of the payload — the migration path for call
  /// sites that already hold a SeeDBOptions.
  SeeDBRequest& WithOptions(const SeeDBOptions& options) {
    options_ = options;
    return *this;
  }

  const std::string& table() const { return table_; }
  const db::PredicatePtr& selection() const { return selection_; }
  const SeeDBOptions& options() const { return options_; }

 private:
  std::string table_;
  db::PredicatePtr selection_;
  SeeDBOptions options_;
};

/// One provisionally ranked view inside a ProgressUpdate.
struct ProvisionalView {
  ViewDescriptor view;
  /// Utility estimate over the rows scanned so far (exact once the scan has
  /// consumed the whole table).
  double utility = 0.0;
  /// Hoeffding confidence bounds (utility -/+ eps(m)); +/-infinity when the
  /// interval is undefined (delta <= 0 or a non-phased strategy).
  double lower = 0.0;
  double upper = 0.0;
};

/// \brief What a RecommendationSession yields after every phase.
struct ProgressUpdate {
  /// 1-based phase just completed, of total_phases requested.
  size_t phase = 0;
  size_t total_phases = 0;
  /// Wall time of this phase, including boundary estimate/prune work.
  double phase_seconds = 0.0;
  /// Rows of the table consumed so far (estimated after cancellation).
  uint64_t rows_scanned = 0;
  uint64_t total_rows = 0;
  /// Views still in contention / retired by the online pruner so far.
  size_t views_active = 0;
  size_t views_pruned_online = 0;
  /// The Hoeffding half-width behind the provisional bounds.
  double ci_half_width = 0.0;
  /// Merged aggregation-state footprint of the scan after this phase, in
  /// bytes — what SeeDBOptions::memory_budget_bytes meters (0 mid-run under
  /// the blocking strategies, whose footprint is only known at the end).
  uint64_t memory_bytes = 0;
  /// Provisional top-k, utility descending. Empty when this boundary's
  /// estimates were not computable (e.g. no row matched the selection yet).
  std::vector<ProvisionalView> top_views;
  /// This boundary triggered early stop; the session is done.
  bool early_stopped = false;
  /// The session was cancelled during this phase; the session is done
  /// (unless Resume() re-opens it).
  bool cancelled = false;
};

/// Push-style consumer of ProgressUpdates — the event-driven alternative to
/// polling Next(). Invoked on the thread driving the session, once per
/// completed phase, before that phase's update is returned (and for the
/// phases Finish() runs when draining a session with a sink attached, which
/// would otherwise complete silently). Must not call back into the session.
using ProgressSink = std::function<void(const ProgressUpdate&)>;

/// \brief A streaming recommendation run: phases under caller control.
///
/// Created by SeeDB::Open(). Drive it with Next() until it returns nullopt
/// (or until done()), then collect the final RecommendationSet with
/// Finish(). Finish() may also be called at any earlier point: it runs any
/// remaining phases without yielding updates — unless the session was
/// cancelled, in which case it assembles partial results immediately.
///
/// Thread-compatibility: one thread drives Next()/Finish(); Cancel() may be
/// called from any thread at any time and is observed at morsel boundaries
/// inside the in-flight phase. Distinct sessions over one Engine are safe
/// to run concurrently.
class RecommendationSession {
 public:
  RecommendationSession(RecommendationSession&&) noexcept = default;
  RecommendationSession& operator=(RecommendationSession&&) noexcept = default;

  /// Executes the next phase and reports it; nullopt once all phases ran
  /// (or the session was cancelled / early-stopped before this call).
  /// Non-phased strategies execute in full on the first call and yield a
  /// single update carrying the final ranking.
  Result<std::optional<ProgressUpdate>> Next();

  /// Requests cooperative cancellation. An in-flight phase stops within one
  /// morsel granule; Finish() then returns partial results over the rows
  /// scanned so far — or Resume() re-opens the session. Safe from any
  /// thread; idempotent.
  void Cancel() { cancel_->store(true, std::memory_order_relaxed); }

  /// Re-opens a cancelled session instead of discarding it: the cancel
  /// token is reset, the cut-short phase's missed morsels are scanned now
  /// (keeping the merged cross-phase aggregates — every row ends up covered
  /// exactly once), and Next() continues from the next phase; the final
  /// top-k equals an uninterrupted run's. Only the phased strategy is
  /// resumable — the blocking strategies execute in one shot, so a
  /// cancelled run's work is gone (error), except that a session cancelled
  /// before its first Next() just re-arms. Errors when the session is not
  /// cancelled or already finished.
  Status Resume();

  /// Attaches a push-style consumer: every ProgressUpdate this session
  /// produces is passed to `sink` as soon as the phase completes —
  /// including the phases a Finish() drain runs, which are silent without a
  /// sink. Pass nullptr to detach.
  void SetProgressSink(ProgressSink sink) { sink_ = std::move(sink); }

  /// No more phases will run: every phase completed, or the session was
  /// cancelled, early-stopped, or stopped by its memory budget.
  bool done() const;
  bool cancelled() const {
    return cancel_->load(std::memory_order_relaxed) || observed_cancel_;
  }
  /// A phase pushed the aggregation-state footprint past
  /// SeeDBOptions::memory_budget_bytes; the session stopped there and
  /// Finish() assembles partial results.
  bool budget_exceeded() const { return budget_exceeded_; }

  /// Phases actually executed so far — keeps counting when Finish() runs
  /// the remaining phases silently (1 after a completed blocking run).
  size_t phases_run() const;

  /// Merged aggregation-state footprint of the scan so far, in bytes (0
  /// under the blocking strategies, which do not surface per-run
  /// footprints) — what the memory budget meters.
  uint64_t memory_bytes() const;

  /// Terminal call: completes any remaining work (silently, no updates) and
  /// assembles the final RecommendationSet — ranked survivors, bottom-k
  /// over survivors, statically pruned views, online-pruned views with
  /// their partial estimates, and the cost profile.
  Result<RecommendationSet> Finish();

 private:
  friend class SeeDB;
  RecommendationSession() = default;

  ExecutorOptions ExecOptions() const;
  Result<std::optional<ProgressUpdate>> NextPhased();
  Result<std::optional<ProgressUpdate>> NextBlocking();
  /// OutOfRange when the scan's footprint exceeds the session budget.
  Status CheckBudget();

  db::Engine* engine_ = nullptr;
  std::string table_;
  db::PredicatePtr selection_;
  SeeDBOptions options_;
  /// Process-unique id stamped at Open(); the `session` arg on this
  /// session's obs trace spans.
  uint64_t trace_id_ = 0;

  // Planning products, fixed at Open() time.
  PruningReport static_pruning_;
  std::unique_ptr<ExecutionPlan> plan_;
  db::EngineStatsSnapshot stats_before_;
  double planning_seconds_ = 0.0;
  /// Rows of the table the plan scans (the sample when materialized
  /// sampling redirected it).
  size_t total_rows_ = 0;
  Stopwatch total_timer_;

  // Execution state. phased_ is engaged for kPhasedSharedScan; the other
  // strategies execute blocking inside the first Next().
  std::unique_ptr<PhasedPlanExecution> phased_;
  ExecutionReport report_;
  /// Results of a completed blocking execution (non-phased strategies).
  std::optional<std::vector<ViewResult>> blocking_results_;
  bool executed_ = false;
  bool finished_ = false;

  /// Shared with the scan so Cancel() stays valid across session moves.
  std::shared_ptr<std::atomic<bool>> cancel_ =
      std::make_shared<std::atomic<bool>>(false);
  bool observed_cancel_ = false;
  bool budget_exceeded_ = false;
  ProgressSink sink_;
};

}  // namespace seedb::core

#endif  // SEEDB_CORE_SESSION_H_
