// ViewDescriptor: the (a, m, f) triple of §2 and its target/comparison
// queries.
//
// A view groups the data by dimension attribute `a` and aggregates measure
// `m` with function `f`. The *target view* applies this to the rows selected
// by the analyst's query Q (D_Q); the *comparison view* applies it to the
// entire table D. The view's utility is the distance between the two
// normalized results.

#ifndef SEEDB_CORE_VIEW_H_
#define SEEDB_CORE_VIEW_H_

#include <string>

#include "db/aggregates.h"
#include "db/group_by.h"
#include "db/grouping_sets.h"

namespace seedb::core {

/// \brief A candidate view: group-by attribute, measure, aggregate function.
struct ViewDescriptor {
  /// Grouping (dimension) attribute — `a` in the paper.
  std::string dimension;
  /// Measure attribute — `m`; empty string means COUNT(*) (no measure).
  std::string measure;
  /// Aggregate function — `f`.
  db::AggregateFunction func = db::AggregateFunction::kSum;

  ViewDescriptor() = default;
  ViewDescriptor(std::string a, std::string m, db::AggregateFunction f)
      : dimension(std::move(a)), measure(std::move(m)), func(f) {}

  /// Human-readable id, e.g. "SUM(amount) BY region".
  std::string Id() const;

  bool operator==(const ViewDescriptor& o) const {
    return dimension == o.dimension && measure == o.measure && func == o.func;
  }
  bool operator!=(const ViewDescriptor& o) const { return !(*this == o); }
  bool operator<(const ViewDescriptor& o) const;
};

struct ViewDescriptorHash {
  size_t operator()(const ViewDescriptor& v) const;
};

/// The target view query: SELECT a, f(m) FROM D_Q GROUP BY a (§2).
/// `selection` is the analyst's predicate Q; null selects all rows (target
/// equals comparison, utility 0).
db::GroupByQuery TargetViewQuery(const ViewDescriptor& view,
                                 const std::string& table,
                                 db::PredicatePtr selection);

/// The comparison view query: SELECT a, f(m) FROM D GROUP BY a (§2).
db::GroupByQuery ComparisonViewQuery(const ViewDescriptor& view,
                                     const std::string& table);

/// Both halves of one view in a single scan via conditional aggregation
/// (§3.3 "Combine target and comparison view query"):
///   SELECT a, f(m) FILTER (WHERE Q) AS <target>, f(m) AS <comparison>
///   FROM D GROUP BY a
db::GroupByQuery CombinedViewQuery(const ViewDescriptor& view,
                                   const std::string& table,
                                   db::PredicatePtr selection);

/// Column names used by CombinedViewQuery (and the optimizer's batched
/// queries) for the two halves of a view's aggregate.
std::string TargetColumnName(const ViewDescriptor& view);
std::string ComparisonColumnName(const ViewDescriptor& view);

}  // namespace seedb::core

#endif  // SEEDB_CORE_VIEW_H_
