#include "core/seedb.h"

#include "core/session.h"

namespace seedb::core {

// The historical blocking entry points, kept as thin wrappers over the
// streaming session API (core/session.h): build a request, run it to
// completion.

Result<RecommendationSet> SeeDB::Recommend(const std::string& table,
                                           db::PredicatePtr selection,
                                           const SeeDBOptions& options) {
  return Run(SeeDBRequest(table).Where(std::move(selection))
                 .WithOptions(options));
}

Result<RecommendationSet> SeeDB::RecommendSql(const std::string& input_query,
                                              const SeeDBOptions& options) {
  SEEDB_ASSIGN_OR_RETURN(SeeDBRequest request,
                         SeeDBRequest::FromSql(input_query));
  return Run(request.WithOptions(options));
}

}  // namespace seedb::core
