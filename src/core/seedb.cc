#include "core/seedb.h"

#include "core/query_generator.h"
#include "core/topk.h"
#include "db/sampler.h"
#include "db/sql/parser.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace seedb::core {
namespace {

Recommendation MakeRecommendation(size_t rank, ViewResult result,
                                  const std::string& table,
                                  const db::PredicatePtr& selection) {
  Recommendation rec;
  rec.rank = rank;
  rec.target_sql = TargetViewQuery(result.view, table, selection).ToSql();
  rec.comparison_sql = ComparisonViewQuery(result.view, table).ToSql();
  rec.combined_sql = CombinedViewQuery(result.view, table, selection).ToSql();
  rec.result = std::move(result);
  return rec;
}

}  // namespace

Result<RecommendationSet> SeeDB::Recommend(const std::string& table,
                                           db::PredicatePtr selection,
                                           const SeeDBOptions& options) {
  Stopwatch total_timer;
  RecommendationSet set;
  set.metric = options.metric;

  // Metadata collection + query generation (enumerate, prune).
  Stopwatch plan_timer;
  SEEDB_ASSIGN_OR_RETURN(
      GeneratedViews generated,
      GenerateViews(engine_, table, selection, options.view_space,
                    options.pruning));
  const PruningReport& pruning = generated.pruning;
  set.pruned_views = pruning.pruned;
  if (pruning.kept.empty()) {
    return Status::InvalidArgument("pruning removed every candidate view");
  }

  // Sampling strategy: kMaterialized builds (or reuses) an in-memory
  // reservoir sample and redirects every view query to it (§3.3).
  std::string exec_table = table;
  if (options.sampling == SamplingStrategy::kMaterialized) {
    SEEDB_ASSIGN_OR_RETURN(const db::Table* data,
                           engine_->catalog()->GetTable(table));
    if (data->num_rows() > options.sample_rows && options.sample_rows > 0) {
      std::string sample_name = StringPrintf(
          "__%s_sample_%zu_%llu", table.c_str(), options.sample_rows,
          static_cast<unsigned long long>(options.sample_seed));
      if (!engine_->catalog()->HasTable(sample_name)) {
        SEEDB_ASSIGN_OR_RETURN(
            db::Table sample,
            db::MaterializeReservoirSample(*data, options.sample_rows,
                                           options.sample_seed));
        engine_->catalog()->PutTable(sample_name, std::move(sample));
      }
      exec_table = std::move(sample_name);
    }
  }

  // Optimization: build the combined-query execution plan. Group-count
  // estimates come from the table the plan will actually scan.
  SEEDB_ASSIGN_OR_RETURN(const db::TableStats* stats,
                         engine_->catalog()->GetStats(exec_table));
  SEEDB_ASSIGN_OR_RETURN(
      ExecutionPlan plan,
      BuildExecutionPlan(pruning.kept, exec_table, selection, *stats,
                         options.optimizer));
  set.profile.planning_seconds = plan_timer.ElapsedSeconds();

  // Execution + view processing.
  db::EngineStatsSnapshot before = engine_->stats();
  ExecutorOptions exec_options;
  exec_options.parallelism = options.parallelism;
  exec_options.strategy = options.strategy;
  exec_options.online_pruning = options.online_pruning;
  if (exec_options.online_pruning.keep_k == 0) {
    // The online pruner protects the top-k views only. bottom_k cannot be
    // protected by construction — pruning discards exactly the low-utility
    // views — so a pruned run's low_utility_views rank survivors only
    // (documented on SeeDBOptions::online_pruning).
    exec_options.online_pruning.keep_k = options.k;
  }
  ExecutionReport exec_report;
  SEEDB_ASSIGN_OR_RETURN(
      std::vector<ViewResult> results,
      ExecutePlan(engine_, plan, options.metric, exec_options, &exec_report));
  db::EngineStatsSnapshot after = engine_->stats();

  // Ranking.
  if (options.bottom_k > 0) {
    std::vector<ViewResult> copy = results;
    std::vector<ViewResult> worst = SelectBottomK(std::move(copy),
                                                  options.bottom_k);
    for (size_t i = 0; i < worst.size(); ++i) {
      set.low_utility_views.push_back(
          MakeRecommendation(i + 1, std::move(worst[i]), table, selection));
    }
  }
  std::vector<ViewResult> best = SelectTopK(std::move(results), options.k);
  for (size_t i = 0; i < best.size(); ++i) {
    set.top_views.push_back(
        MakeRecommendation(i + 1, std::move(best[i]), table, selection));
  }

  set.profile.views_enumerated = pruning.total_considered();
  set.profile.views_pruned = pruning.pruned.size();
  set.profile.views_executed = pruning.kept.size();
  set.profile.views_pruned_online = exec_report.views_pruned_online;
  set.profile.phases_executed = exec_report.phases_executed;
  set.profile.queries_issued = after.queries_executed - before.queries_executed;
  set.profile.table_scans = after.table_scans - before.table_scans;
  set.profile.rows_scanned = after.rows_scanned - before.rows_scanned;
  set.profile.execution_seconds = exec_report.total_seconds;
  set.profile.total_seconds = total_timer.ElapsedSeconds();
  return set;
}

Result<RecommendationSet> SeeDB::RecommendSql(const std::string& input_query,
                                              const SeeDBOptions& options) {
  SEEDB_ASSIGN_OR_RETURN(db::sql::InputQuery q,
                         db::sql::ParseInputQuery(input_query));
  return Recommend(q.table, q.selection, options);
}

}  // namespace seedb::core
