// SeeDB public facade: the full pipeline of Figure 4.
//
//   analyst query Q
//     -> Metadata Collector  (catalog statistics + access tracker)
//     -> Query Generator     (view enumeration + pruning)
//     -> Optimizer           (query combining, bin packing, sampling)
//     -> DBMS                (embedded engine, optionally parallel)
//     -> View Processor      (normalization + utility)
//     -> top-k recommendations

#ifndef SEEDB_CORE_SEEDB_H_
#define SEEDB_CORE_SEEDB_H_

#include <string>

#include "core/executor.h"
#include "core/metrics.h"
#include "core/optimizer.h"
#include "core/pruning.h"
#include "core/recommendation.h"
#include "core/view_space.h"
#include "db/engine.h"
#include "util/result.h"

namespace seedb::core {

/// How view queries trade accuracy for latency via sampling (§3.3).
enum class SamplingStrategy {
  /// Full data.
  kNone,
  /// Per-query Bernoulli TABLESAMPLE with optimizer.sample_fraction. Cheap
  /// to set up but every query still walks the full row range (rows are
  /// skipped, not absent), so latency gains are modest in a columnar
  /// engine.
  kInline,
  /// The paper's strategy: "construct a sample of the dataset that can fit
  /// in memory and run all view queries against the sample." A reservoir
  /// sample of `sample_rows` rows is materialized once per (table, size,
  /// seed), cached in the catalog, and every view query runs against it —
  /// latency then scales with the sample size.
  kMaterialized,
};

/// Options for one Recommend() call.
struct SeeDBOptions {
  /// Number of views to recommend (the k of Problem 2.1).
  size_t k = 5;
  /// Utility metric S.
  DistanceMetric metric = DistanceMetric::kEarthMovers;
  /// Also return this many lowest-utility "bad views" (0 = none). Under
  /// online pruning, bottom-k ranks only the views examined to completion —
  /// the pruner discards exactly the low-utility views mid-scan, so the
  /// worst candidates land in RecommendationSet::online_pruned_views
  /// instead; ExecutionProfile::examined_view_count says how many views the
  /// ranking actually covers.
  size_t bottom_k = 0;

  ViewSpaceOptions view_space;
  PruningOptions pruning;           // default: no pruning
  OptimizerOptions optimizer;       // default: all combining on
  /// Concurrent query execution (§3.3 "Parallel Query Execution"), or
  /// morsel worker threads under the fused strategies.
  size_t parallelism = 1;
  /// Explicit-SIMD kernel tier (db/vec/simd/) inside the fused strategies'
  /// vectorized morsels. Kill switch — results are bit-identical either
  /// way, and the tier self-disables on builds/CPUs without the ISA.
  bool enable_simd = true;
  /// kPerQuery runs each planned query as its own table pass; kSharedScan
  /// fuses the whole plan into one morsel-driven pass (db/shared_scan.h);
  /// kPhasedSharedScan additionally splits that pass into sequential phases
  /// with online view pruning at each boundary.
  ExecutionStrategy strategy = ExecutionStrategy::kPerQuery;
  /// Phase count and mid-flight pruner for kPhasedSharedScan. keep_k = 0
  /// (the default) is wired to this request's k at execution time; online
  /// pruning discards low-utility views mid-scan, so bottom_k under a
  /// pruned run only ranks the survivors.
  OnlinePruningOptions online_pruning;

  SamplingStrategy sampling = SamplingStrategy::kNone;
  /// Reservoir size for kMaterialized (ignored otherwise). Tables at or
  /// below this size run un-sampled.
  size_t sample_rows = 100000;
  uint64_t sample_seed = 0;

  /// Per-session cap on the run's aggregation-state footprint (bytes) — the
  /// working-memory trade-off §3.3 describes, made a hard limit so one
  /// greedy session cannot starve a multi-tenant server. Enforced under
  /// every strategy: the fused strategies meter the scan's merged state at
  /// phase boundaries (one boundary for kSharedScan); kPerQuery meters the
  /// cumulative per-query result state and stops issuing queries on a
  /// breach. The Next() that observed the breach returns a graceful
  /// OutOfRange, and Finish() assembles partial results from the work
  /// already completed (profile.budget_exceeded = true). 0 = unlimited.
  size_t memory_budget_bytes = 0;

  /// Record obs trace spans (session lifecycle, scan phases, worker merge
  /// steps) for this run even when the active obs::TraceRecorder was not
  /// started with trace_all_sessions. No effect while no recorder is
  /// active — spans cost one relaxed load then.
  bool trace = false;
};

class SeeDBRequest;
class RecommendationSession;

/// \brief The SeeDB recommendation engine over an embedded DBMS.
///
/// The primary entry point is the streaming session API (core/session.h):
/// build a SeeDBRequest, Open() a RecommendationSession, drive it phase by
/// phase (or Run() it to completion). The blocking Recommend()/
/// RecommendSql() overloads survive as thin wrappers over Run().
///
/// Thread-compatible: concurrent sessions / Recommend() calls on one SeeDB
/// (or on distinct SeeDB instances sharing one Engine) are safe — all
/// per-request state lives in the session, and the engine is concurrent.
class SeeDB {
 public:
  /// `engine` must outlive this object.
  explicit SeeDB(db::Engine* engine) : engine_(engine) {}

  /// Opens a streaming recommendation session for `request`: planning runs
  /// here; execution happens as the caller drives the session. The SeeDB's
  /// engine must outlive the session.
  Result<RecommendationSession> Open(const SeeDBRequest& request);

  /// Runs `request` to completion: Open() + Finish() in one call.
  Result<RecommendationSet> Run(const SeeDBRequest& request);

  /// Recommends views for analyst selection `selection` over `table`
  /// (null selection = whole table; every view then has utility ~0).
  /// Wrapper over Run().
  Result<RecommendationSet> Recommend(const std::string& table,
                                      db::PredicatePtr selection,
                                      const SeeDBOptions& options = {});

  /// Convenience: accepts the analyst query as SQL text,
  /// e.g. "SELECT * FROM sales WHERE product = 'Laserwave'".
  Result<RecommendationSet> RecommendSql(const std::string& input_query,
                                         const SeeDBOptions& options = {});

  db::Engine* engine() { return engine_; }

 private:
  db::Engine* engine_;
};

}  // namespace seedb::core

#endif  // SEEDB_CORE_SEEDB_H_
