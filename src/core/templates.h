// Pre-defined query templates (§3.2, input mechanism (c)): "using
// pre-defined query templates which encode commonly performed operations,
// e.g., selecting outliers in a particular column."
//
// A template turns a table + column into a ready analyst query (selection
// predicate + SQL text) using catalog statistics, so non-SQL users can drive
// SeeDB with one click.

#ifndef SEEDB_CORE_TEMPLATES_H_
#define SEEDB_CORE_TEMPLATES_H_

#include <string>

#include "db/engine.h"
#include "db/predicate.h"
#include "util/result.h"

namespace seedb::core {

/// A template-generated analyst query.
struct TemplateQuery {
  /// Human-readable description ("rows where profit is beyond 2 sigma").
  std::string description;
  /// The selection predicate Q.
  db::PredicatePtr selection;
  /// Equivalent input query as SQL ("SELECT * FROM t WHERE ...").
  std::string sql;
};

/// Selects rows where `measure` lies more than `sigmas` standard deviations
/// from its mean (the paper's "selecting outliers in a particular column").
/// Fails if the column is not a numeric measure or is constant.
Result<TemplateQuery> OutlierTemplate(db::Engine* engine,
                                      const std::string& table,
                                      const std::string& measure,
                                      double sigmas = 2.0);

/// Selects rows holding `dimension`'s most frequent value — "focus on the
/// dominant category".
Result<TemplateQuery> TopValueTemplate(db::Engine* engine,
                                       const std::string& table,
                                       const std::string& dimension);

/// Selects rows in the top `fraction` of `measure`'s value range
/// ("high-end slice", e.g. the most expensive orders).
Result<TemplateQuery> HighValueTemplate(db::Engine* engine,
                                        const std::string& table,
                                        const std::string& measure,
                                        double fraction = 0.25);

}  // namespace seedb::core

#endif  // SEEDB_CORE_TEMPLATES_H_
