// Recommendation results returned by the SeeDB facade.

#ifndef SEEDB_CORE_RECOMMENDATION_H_
#define SEEDB_CORE_RECOMMENDATION_H_

#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/online_pruning.h"
#include "core/pruning.h"
#include "core/view_processor.h"

namespace seedb::core {

/// \brief One recommended view with everything the frontend displays.
struct Recommendation {
  /// 1-based rank among the recommendations.
  size_t rank = 0;
  ViewResult result;
  /// The SQL SeeDB would issue for each form of this view's queries.
  std::string target_sql;
  std::string comparison_sql;
  std::string combined_sql;

  const ViewDescriptor& view() const { return result.view; }
  double utility() const { return result.utility; }
};

/// \brief Cost observables of one Recommend() call.
struct ExecutionProfile {
  size_t views_enumerated = 0;
  /// Dropped before execution by static view-space pruning (core/pruning.h).
  size_t views_pruned = 0;
  size_t views_executed = 0;
  /// Retired mid-scan by the phased executor's online pruner (CI / MAB).
  size_t views_pruned_online = 0;
  /// Views that ran to the end of execution and were actually ranked —
  /// views_executed minus the online-pruned (and, after cancellation, minus
  /// views whose queries never completed). Top-k AND bottom-k rank these
  /// survivors only: online pruning discards exactly the low-utility views,
  /// so a pruned run's low_utility_views are the worst *examined* views,
  /// not the worst candidates.
  size_t examined_view_count = 0;
  /// Phases the fused scan ran (0 under per-query execution).
  size_t phases_executed = 0;
  size_t queries_issued = 0;
  size_t table_scans = 0;
  uint64_t rows_scanned = 0;
  /// Morsels of the fused scan whose inner loop ran the vectorized kernels
  /// (db/vec/) — 0 under per-query execution or when every grouping set
  /// fell back to the hash path.
  uint64_t vectorized_morsels = 0;
  /// Of those, morsels that additionally ran the explicit-SIMD kernel tier
  /// (db/vec/simd/) — 0 when the tier is off, built scalar, or the CPU
  /// lacks the ISA.
  uint64_t simd_morsels = 0;
  /// (query, grouping set) pairs this run adopted from / missed in the
  /// engine's cross-session result cache (db/scan_cache.h) — both 0 when
  /// the cache is disabled or under per-query execution.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// The scan stopped before the last requested phase because the top-k was
  /// CI-stable; utilities are estimates over the rows seen.
  bool early_stopped = false;
  /// The run was cancelled mid-flight; results cover the rows seen so far.
  bool cancelled = false;
  /// The session's memory budget (SeeDBOptions::memory_budget_bytes) was
  /// exceeded mid-scan; results cover the rows seen so far.
  bool budget_exceeded = false;

  double planning_seconds = 0.0;
  double execution_seconds = 0.0;
  double total_seconds = 0.0;

  std::string ToString() const;
};

/// \brief Everything Recommend() returns: ranked views, optional "bad views"
/// for contrast (§4 Scenario 1), pruning details, and the cost profile.
struct RecommendationSet {
  std::vector<Recommendation> top_views;
  /// Lowest-utility views, ascending (empty unless requested). Ranks only
  /// the views examined to completion — see
  /// ExecutionProfile::examined_view_count.
  std::vector<Recommendation> low_utility_views;
  /// Dropped before execution by static view-space pruning.
  std::vector<PrunedView> pruned_views;
  /// Retired mid-scan by the online pruner, each with the partial utility
  /// estimate it carried at retirement — the frontend's "views not
  /// examined" display.
  std::vector<OnlinePrunedView> online_pruned_views;
  DistanceMetric metric = DistanceMetric::kEarthMovers;
  ExecutionProfile profile;
};

}  // namespace seedb::core

#endif  // SEEDB_CORE_RECOMMENDATION_H_
