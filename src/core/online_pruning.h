// Pruning-based execution optimization (§3.3, "Pruning Optimizations"):
// discard low-utility views *during* execution, not just before it.
//
// The phased executor (core/executor.h, kPhasedSharedScan) splits the table
// into N sequential phases; after each phase every surviving view has a
// running utility estimate computed from the rows seen so far. This module
// decides which views to retire at each phase boundary. Two strategies from
// the paper:
//
//   * Confidence-interval pruning — keep a Hoeffding-style interval
//     estimate ± eps(m) around each view's running utility, eps shrinking
//     with the number of phases m observed. A view is pruned when its upper
//     bound falls below the k-th largest lower bound: it provably (w.h.p.)
//     cannot make the top k. delta → 0 widens every interval to infinity,
//     reproducing the exhaustive top-k exactly.
//
//   * Multi-armed bandit (successive halving) — at every phase boundary,
//     retire the worst-scoring half of the surviving views until k remain.
//     Aggressive and parameter-free; with a single phase there are no
//     boundaries, so nothing is pruned and the result is exhaustive.
//
// Unlike core/pruning.h (static, pre-execution view-space pruning on column
// statistics), this operates on measured utilities mid-flight.

#ifndef SEEDB_CORE_ONLINE_PRUNING_H_
#define SEEDB_CORE_ONLINE_PRUNING_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/view.h"
#include "util/result.h"

namespace seedb::core {

/// Mid-execution pruning strategy for the phased executor.
enum class OnlinePruner {
  /// Never prune: every view runs to completion (exhaustive).
  kNone,
  /// Hoeffding confidence intervals on running utility.
  kConfidenceInterval,
  /// Multi-armed-bandit successive halving.
  kMultiArmedBandit,
};

const char* OnlinePrunerToString(OnlinePruner pruner);
Result<OnlinePruner> ParseOnlinePruner(const std::string& name);

struct OnlinePruningOptions {
  /// Sequential table slices the phased executor runs. More phases = more
  /// pruning opportunities (and estimate updates), at the cost of per-phase
  /// merge/estimate overhead. 1 = a single monolithic pass, never prunes.
  size_t num_phases = 10;
  OnlinePruner pruner = OnlinePruner::kNone;
  /// Confidence-interval failure probability: eps(m) =
  /// utility_range * sqrt(ln(2/delta) / (2m)) after m phases. Smaller delta
  /// = wider intervals = more conservative pruning; delta <= 0 means "never
  /// wrong", i.e. intervals are infinite and nothing is ever pruned.
  double delta = 0.05;
  /// Range of the utility metric for the Hoeffding bound. 0 (or negative)
  /// means auto-calibrate: the phased executor resolves it at Begin to the
  /// largest MetricUtilityRange(metric, group_count) across the plan's
  /// views, with per-dimension group counts from catalog statistics — the
  /// right behavior for EMD, whose true range grows with the view's group
  /// count (a manual constant is either unsound for wide dimensions or
  /// over-conservative for narrow ones). An explicit positive value is used
  /// as-is; the 2.0 default safely covers every O(1)-diameter metric
  /// (L1 = 2x total variation is the widest). Until resolved, a
  /// non-positive range yields infinite intervals (never prunes).
  double utility_range = 2.0;
  /// Views that must survive — the k of the top-k request. 0 disables
  /// pruning entirely (there is no target to prune toward).
  size_t keep_k = 0;
  /// Phase boundaries to observe before the first prune decision (an
  /// estimate from a sliver of the table is noise). 1 = prune from the
  /// first boundary on, the paper's behavior.
  size_t warmup_phases = 1;
  /// Warm-start priors (result-cache integration): per-view utility
  /// estimates carried over from an earlier execution of the same plan
  /// shape, indexed like the views fed to Observe(). Views beyond the
  /// vector's length (or a shorter vector) start cold at 0. Empty = no
  /// priors.
  std::vector<double> prior_estimates;
  /// Evidence weight of those priors, in phases: the Hoeffding half-width
  /// and the warmup gate behave as if this many phase boundaries had
  /// already been observed, so intervals start tight and views retire
  /// earlier. 0 = priors seed the estimates but carry no confidence.
  size_t prior_weight = 0;
  /// Early-stop sampling (§3.3's endgame): stop scanning entirely once the
  /// provisional top-k ranking has been identical for this many consecutive
  /// phase boundaries AND every adjacent pair in it (plus the best excluded
  /// view) is separated by more than twice the Hoeffding half-width derived
  /// from delta / utility_range. The final utilities are then estimates
  /// over the rows seen so far. 0 disables; delta <= 0 makes the half-width
  /// infinite, so early stop never fires and the run stays exhaustive.
  size_t early_stop_stable_phases = 0;
};

/// \brief A view the online pruner retired mid-scan, with the running
/// utility estimate it carried at retirement — the frontend's "views not
/// examined" display (bottom-k and final rankings cover survivors only).
struct OnlinePrunedView {
  ViewDescriptor view;
  /// Utility estimate over the rows seen when the view was retired.
  double partial_utility = 0.0;
  /// 1-based phase boundary at which it was retired.
  size_t pruned_at_phase = 0;
  /// Rows of the table consumed at that boundary.
  uint64_t rows_seen = 0;
};

/// \brief Per-view survival state across the phases of one plan execution.
///
/// Views are identified by dense index [0, num_views). After each phase the
/// executor calls Observe() with every view's current utility estimate
/// (computed over all rows seen so far); the state updates its bookkeeping
/// and returns the views newly retired at this boundary. Pruned views stay
/// pruned. Never prunes below keep_k survivors.
class OnlinePruningState {
 public:
  OnlinePruningState(size_t num_views, const OnlinePruningOptions& options);

  /// `utilities` must have one entry per view (entries of already-pruned
  /// views are ignored). Returns indices newly pruned, ascending.
  std::vector<size_t> Observe(const std::vector<double>& utilities);

  bool IsActive(size_t view) const { return active_[view] != 0; }
  size_t num_views() const { return active_.size(); }
  size_t num_active() const;
  size_t views_pruned() const { return views_pruned_; }
  size_t phases_observed() const { return phases_observed_; }
  /// Phases of prior evidence the state was constructed with (the effective
  /// observation count is phases_observed() + prior_phases()).
  size_t prior_phases() const { return prior_phases_; }
  /// Last utility estimate fed for this view (0 before the first Observe).
  double estimate(size_t view) const { return estimate_[view]; }

  /// The Hoeffding half-width eps(m) after m observed phases under
  /// `options`; infinite for delta <= 0. Exposed for tests and benches.
  static double ConfidenceHalfWidth(const OnlinePruningOptions& options,
                                    size_t phases_observed);

 private:
  std::vector<size_t> PruneByConfidenceInterval();
  std::vector<size_t> PruneBySuccessiveHalving();

  OnlinePruningOptions options_;
  std::vector<uint8_t> active_;
  std::vector<double> estimate_;
  size_t views_pruned_ = 0;
  size_t phases_observed_ = 0;
  /// Prior evidence weight (options.prior_weight when priors were supplied).
  size_t prior_phases_ = 0;
};

}  // namespace seedb::core

#endif  // SEEDB_CORE_ONLINE_PRUNING_H_
