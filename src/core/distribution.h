// Probability distributions over group keys (§2).
//
// "We normalize each result table into a probability distribution, such that
// the values of f(m) sum to 1." Target and comparison views may see
// different group sets (a group can be absent from D_Q), so the pair is
// *aligned* on the union of keys with absent groups contributing 0.

#ifndef SEEDB_CORE_DISTRIBUTION_H_
#define SEEDB_CORE_DISTRIBUTION_H_

#include <string>
#include <vector>

#include "db/table.h"
#include "util/result.h"

namespace seedb::core {

/// \brief A discrete probability distribution over named group keys.
///
/// Keys are sorted ascending (deterministic order); probabilities sum to 1
/// unless the source was entirely empty/zero, in which case the distribution
/// is uniform over its keys (documented fallback so downstream distance
/// computations stay well-defined).
struct Distribution {
  std::vector<db::Value> keys;
  std::vector<double> probabilities;

  size_t size() const { return keys.size(); }
  bool empty() const { return keys.empty(); }

  /// "key: p" pairs for diagnostics.
  std::string ToString() const;
};

/// \brief Target and comparison distributions aligned on the same key set.
struct AlignedPair {
  Distribution target;
  Distribution comparison;
  /// Raw (un-normalized) aggregate values aligned with keys, for display.
  std::vector<double> target_raw;
  std::vector<double> comparison_raw;
};

/// Normalizes raw aggregate values into probabilities.
///
/// Aggregates can be negative (e.g. SUM(profit)); negative mass has no
/// probability reading, so when any value is negative the vector is
/// normalized by magnitude (|v_i| / sum |v_j|) — a big loss is as
/// distribution-defining as a big gain. An all-zero vector becomes uniform.
/// Both rules are deterministic and shared by every metric.
std::vector<double> NormalizeToProbabilities(const std::vector<double>& raw);

/// Builds an aligned pair from two single-view result tables (group key in
/// column 0, values in the given columns); keys missing from one side get
/// raw value 0.
Result<AlignedPair> AlignFromTables(const db::Table& target,
                                    size_t target_value_col,
                                    const db::Table& comparison,
                                    size_t comparison_value_col);

/// Convenience overload for plain two-column view results (value column 1).
inline Result<AlignedPair> AlignFromTables(const db::Table& target,
                                           const db::Table& comparison) {
  return AlignFromTables(target, 1, comparison, 1);
}

/// Builds an aligned pair from one *combined-query* result table holding the
/// group key in column 0 and the named target/comparison value columns.
Result<AlignedPair> AlignFromCombined(const db::Table& combined,
                                      const std::string& target_col,
                                      const std::string& comparison_col);

}  // namespace seedb::core

#endif  // SEEDB_CORE_DISTRIBUTION_H_
