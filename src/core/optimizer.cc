#include "core/optimizer.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "db/sql/printer.h"
#include "util/string_util.h"

namespace seedb::core {

const char* QueryHalfToString(QueryHalf half) {
  switch (half) {
    case QueryHalf::kCombined:
      return "combined";
    case QueryHalf::kTargetOnly:
      return "target";
    case QueryHalf::kComparisonOnly:
      return "comparison";
  }
  return "?";
}

std::string ExecutionPlan::Describe() const {
  std::string out = StringPrintf("ExecutionPlan: %zu view(s), %zu quer%s\n",
                                 num_views, queries.size(),
                                 queries.size() == 1 ? "y" : "ies");
  for (size_t i = 0; i < queries.size(); ++i) {
    const PlannedQuery& pq = queries[i];
    out += StringPrintf("  [%zu] (%s, %zu slot%s) %s\n", i,
                        QueryHalfToString(pq.half), pq.slots.size(),
                        pq.slots.size() == 1 ? "" : "s",
                        pq.query.ToSql().c_str());
  }
  return out;
}

namespace {

// A (measure, function) pair — the aggregate payload of a view.
struct AggPair {
  std::string measure;
  db::AggregateFunction func;

  bool operator<(const AggPair& o) const {
    if (measure != o.measure) return measure < o.measure;
    return func < o.func;
  }
};

// Dimensions in first-appearance order with their views.
struct DimViews {
  std::string dimension;
  std::vector<ViewDescriptor> views;
};

std::vector<DimViews> GroupViewsByDimension(
    const std::vector<ViewDescriptor>& views) {
  std::vector<DimViews> out;
  std::map<std::string, size_t> index;
  for (const auto& v : views) {
    auto it = index.find(v.dimension);
    if (it == index.end()) {
      index.emplace(v.dimension, out.size());
      out.push_back({v.dimension, {v}});
    } else {
      out[it->second].views.push_back(v);
    }
  }
  return out;
}

uint64_t EstimateGroups(const db::TableStats& stats, const std::string& dim,
                        const OptimizerOptions& options) {
  if (auto cs = stats.Find(dim); cs.ok()) {
    return std::max<uint64_t>(1, (*cs)->distinct_count);
  }
  return options.default_group_estimate;
}

// Builds the aggregate specs for one set of views that will share a query.
// For kCombined each view contributes a FILTER(target) spec and an
// unconditional comparison spec; otherwise one spec for the requested half.
std::vector<db::AggregateSpec> BuildAggregates(
    const std::vector<ViewDescriptor>& views, QueryHalf half,
    db::PredicatePtr selection) {
  // Dedupe (measure, func) pairs: two dimensions in one batch may host the
  // same aggregate payload, which then needs computing only once.
  std::map<AggPair, ViewDescriptor> unique;
  for (const auto& v : views) {
    unique.emplace(AggPair{v.measure, v.func}, v);
  }
  std::vector<db::AggregateSpec> specs;
  for (const auto& [pair, view] : unique) {
    (void)pair;
    switch (half) {
      case QueryHalf::kCombined:
        specs.push_back(db::AggregateSpec::Make(
            view.func, view.measure, TargetColumnName(view), selection));
        specs.push_back(db::AggregateSpec::Make(view.func, view.measure,
                                                ComparisonColumnName(view)));
        break;
      case QueryHalf::kTargetOnly:
        specs.push_back(db::AggregateSpec::Make(view.func, view.measure,
                                                TargetColumnName(view)));
        break;
      case QueryHalf::kComparisonOnly:
        specs.push_back(db::AggregateSpec::Make(view.func, view.measure,
                                                ComparisonColumnName(view)));
        break;
    }
  }
  return specs;
}

// Emits the planned query (or pair of queries when target/comparison are not
// combined) for one batch of dimensions and the views that ride along.
void EmitQueriesForBatch(const std::vector<DimViews>& batch,
                         const std::string& table_name,
                         db::PredicatePtr selection,
                         const OptimizerOptions& options,
                         std::vector<PlannedQuery>* out) {
  std::vector<ViewDescriptor> all_views;
  std::vector<std::vector<std::string>> sets;
  for (const auto& dv : batch) {
    sets.push_back({dv.dimension});
    all_views.insert(all_views.end(), dv.views.begin(), dv.views.end());
  }

  auto make_query = [&](QueryHalf half) {
    PlannedQuery pq;
    pq.half = half;
    pq.query.table = table_name;
    pq.query.grouping_sets = sets;
    pq.query.sample_fraction = options.sample_fraction;
    pq.query.sample_seed = options.sample_seed;
    // The combined form folds the selection into FILTER clauses and scans
    // the whole table; the target-only form pushes it into WHERE.
    if (half == QueryHalf::kTargetOnly) {
      pq.query.where = selection;
    }
    pq.query.aggregates = BuildAggregates(
        all_views, half, half == QueryHalf::kCombined ? selection : nullptr);
    for (size_t s = 0; s < batch.size(); ++s) {
      for (const auto& v : batch[s].views) {
        ViewSlot slot;
        slot.view = v;
        slot.result_index = s;
        if (half != QueryHalf::kComparisonOnly) {
          slot.target_column = TargetColumnName(v);
        }
        if (half != QueryHalf::kTargetOnly) {
          slot.comparison_column = ComparisonColumnName(v);
        }
        pq.slots.push_back(std::move(slot));
      }
    }
    out->push_back(std::move(pq));
  };

  if (options.combine_target_comparison) {
    make_query(QueryHalf::kCombined);
  } else {
    make_query(QueryHalf::kTargetOnly);
    make_query(QueryHalf::kComparisonOnly);
  }
}

// Number of aggregate-state slots one dimension's query carries, for the
// bin-packing weight: aggregates per view x halves per query.
uint64_t AggSlotsPerGroup(const DimViews& dv, const OptimizerOptions& options) {
  uint64_t aggs = static_cast<uint64_t>(dv.views.size());
  return aggs * (options.combine_target_comparison ? 2 : 1);
}

}  // namespace

Result<ExecutionPlan> BuildExecutionPlan(
    const std::vector<ViewDescriptor>& views, const std::string& table_name,
    db::PredicatePtr selection, const db::TableStats& stats,
    const OptimizerOptions& options) {
  if (views.empty()) {
    return Status::InvalidArgument("no views to plan");
  }
  if (options.sample_fraction <= 0.0 || options.sample_fraction > 1.0) {
    return Status::InvalidArgument("sample_fraction outside (0, 1]");
  }
  ExecutionPlan plan;
  plan.num_views = views.size();

  std::vector<DimViews> by_dim = GroupViewsByDimension(views);

  // Without aggregate combining, every (dimension, measure, func) triple gets
  // its own DimViews entry so it plans into its own query (then group-by
  // combining may still merge across dimensions).
  std::vector<DimViews> units;
  if (options.combine_aggregates) {
    units = by_dim;
  } else {
    for (const auto& dv : by_dim) {
      for (const auto& v : dv.views) {
        units.push_back({dv.dimension, {v}});
      }
    }
  }

  if (!options.combine_group_bys) {
    for (const auto& unit : units) {
      EmitQueriesForBatch({unit}, table_name, selection, options,
                          &plan.queries);
    }
    return plan;
  }

  // Bin-pack units by aggregation-state footprint. A GROUPING SETS query
  // applies one aggregate list to every set, so units may share a bin only if
  // sharing payloads is allowed: with aggregate combining on, everything can
  // mix (BuildAggregates computes the deduped payload union); with it off,
  // packing happens within each (measure, func) layer so no query ever
  // carries an aggregate a view did not ask for.
  std::vector<std::vector<size_t>> packing_groups;
  if (options.combine_aggregates) {
    packing_groups.emplace_back(units.size());
    std::iota(packing_groups.back().begin(), packing_groups.back().end(),
              size_t{0});
  } else {
    std::map<AggPair, std::vector<size_t>> layers;
    for (size_t i = 0; i < units.size(); ++i) {
      const ViewDescriptor& v = units[i].views.front();
      layers[AggPair{v.measure, v.func}].push_back(i);
    }
    for (auto& [pair, ids] : layers) {
      (void)pair;
      packing_groups.push_back(std::move(ids));
    }
  }

  BinPackingOptions pack_options;
  pack_options.capacity = options.memory_budget_bytes;
  pack_options.max_items_per_bin = options.max_group_bys_per_query;
  for (const auto& group : packing_groups) {
    std::vector<BinPackingItem> items;
    items.reserve(group.size());
    for (size_t i : group) {
      uint64_t groups = EstimateGroups(stats, units[i].dimension, options);
      uint64_t weight = groups * AggSlotsPerGroup(units[i], options) *
                        sizeof(db::AggState);
      items.push_back({i, weight});
    }
    BinPackingSolution solution = PackBins(items, pack_options);
    for (const auto& bin : solution.bins) {
      std::vector<DimViews> batch;
      batch.reserve(bin.size());
      for (size_t id : bin) batch.push_back(units[id]);
      EmitQueriesForBatch(batch, table_name, selection, options,
                          &plan.queries);
    }
  }
  return plan;
}

}  // namespace seedb::core
