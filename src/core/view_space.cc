#include "core/view_space.h"

namespace seedb::core {

std::vector<ViewDescriptor> EnumerateViews(const db::Schema& schema,
                                           const ViewSpaceOptions& options) {
  std::vector<ViewDescriptor> views;
  const auto dims = schema.DimensionColumns();
  const auto measures = schema.MeasureColumns();
  views.reserve(dims.size() * (measures.size() * options.functions.size() +
                               (options.include_count_star ? 1 : 0)));
  for (const auto& a : dims) {
    for (const auto& m : measures) {
      for (db::AggregateFunction f : options.functions) {
        views.emplace_back(a, m, f);
      }
    }
    if (options.include_count_star) {
      views.emplace_back(a, "", db::AggregateFunction::kCount);
    }
  }
  return views;
}

size_t ViewSpaceSize(size_t num_dimensions, size_t num_measures,
                     size_t num_functions, bool include_count_star) {
  return num_dimensions * num_measures * num_functions +
         (include_count_star ? num_dimensions : 0);
}

}  // namespace seedb::core
