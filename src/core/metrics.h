// Distance metrics between probability distributions (§2).
//
// "SEEDB supports a variety of metrics to compute utility, including Earth
// Mover's Distance, Euclidean Distance, Kullback-Leibler Divergence, and
// Jenson-Shannon Distance." All metrics here take two aligned probability
// vectors of equal length; higher = more deviation = more interesting.

#ifndef SEEDB_CORE_METRICS_H_
#define SEEDB_CORE_METRICS_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace seedb::core {

enum class DistanceMetric {
  /// Earth Mover's Distance with the aligned key order as the 1-D ground
  /// line (unit distance between adjacent keys, so EMD = sum of |CDF diffs|).
  kEarthMovers,
  /// L2 distance.
  kEuclidean,
  /// KL(target || comparison), with epsilon smoothing so zero comparison
  /// bins stay finite.
  kKullbackLeibler,
  /// Jensen–Shannon *distance* (square root of JS divergence, natural log);
  /// symmetric and bounded by sqrt(ln 2).
  kJensenShannon,
  /// L1 distance (= 2x total variation).
  kL1,
  /// L-infinity (largest single-bin deviation).
  kChebyshev,
  /// Hellinger distance, bounded by 1.
  kHellinger,
};

const char* DistanceMetricToString(DistanceMetric metric);
Result<DistanceMetric> ParseDistanceMetric(const std::string& name);

/// All supported metrics in a stable order.
const std::vector<DistanceMetric>& AllDistanceMetrics();

/// Distance between two aligned probability vectors. Fails if sizes differ
/// or the vectors are empty.
Result<double> Distance(const std::vector<double>& p,
                        const std::vector<double>& q, DistanceMetric metric);

/// Tight upper bound on `metric` over two probability vectors of
/// `group_count` bins — the Hoeffding utility range the online pruner's
/// confidence intervals scale with (core/online_pruning.h). Most shipped
/// metrics have an O(1) diameter; EMD's grows with the group count (point
/// masses at opposite ends of a G-bin ground line are G-1 apart), which is
/// why a manual constant knob cannot be right for EMD across views with
/// different dimension cardinalities.
double MetricUtilityRange(DistanceMetric metric, size_t group_count);

/// Epsilon used to smooth zero bins in KL divergence.
inline constexpr double kKlEpsilon = 1e-9;

}  // namespace seedb::core

#endif  // SEEDB_CORE_METRICS_H_
