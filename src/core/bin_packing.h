// Bin packing of group-by attributes into combined queries (§3.3).
//
// "Given a set of candidate views, we model the problem of finding the
// optimal combinations of views as a variant of bin-packing and apply ILP
// techniques to obtain the best solution."
//
// Items are dimension attributes; an item's weight is the aggregation
// working memory its group-by needs (estimated groups x aggregate state).
// Bins are combined queries bounded by the working-memory budget; minimizing
// bins minimizes table scans. Two solvers: first-fit-decreasing (fast,
// guaranteed <= 11/9 OPT + 1) and an exact branch-and-bound for small
// instances standing in for the paper's ILP.

#ifndef SEEDB_CORE_BIN_PACKING_H_
#define SEEDB_CORE_BIN_PACKING_H_

#include <cstdint>
#include <vector>

#include "util/result.h"

namespace seedb::core {

struct BinPackingItem {
  /// Caller-side identifier (e.g. index into a dimension list).
  size_t id = 0;
  /// Working-memory weight in bytes.
  uint64_t weight = 0;
};

struct BinPackingOptions {
  /// Bin capacity in bytes. Items heavier than the capacity are placed in
  /// singleton bins (they must execute regardless).
  uint64_t capacity = 64ull << 20;
  /// Hard cap on items per bin (system limits on query width); 0 = no cap.
  size_t max_items_per_bin = 0;
  /// Use the exact solver when the item count is at most this; otherwise
  /// first-fit-decreasing.
  size_t exact_solver_limit = 12;
};

struct BinPackingSolution {
  /// Each bin lists item ids.
  std::vector<std::vector<size_t>> bins;
  /// True if produced by the exact solver (optimal bin count).
  bool exact = false;

  size_t num_bins() const { return bins.size(); }
};

/// Packs items into the fewest bins heuristically (first-fit-decreasing).
BinPackingSolution FirstFitDecreasing(const std::vector<BinPackingItem>& items,
                                      const BinPackingOptions& options);

/// Exact minimum-bin packing via branch-and-bound. Intended for small
/// instances (<= ~16 items); cost grows exponentially beyond that.
BinPackingSolution ExactBinPacking(const std::vector<BinPackingItem>& items,
                                   const BinPackingOptions& options);

/// Dispatches to the exact solver for small inputs, FFD otherwise.
BinPackingSolution PackBins(const std::vector<BinPackingItem>& items,
                            const BinPackingOptions& options);

}  // namespace seedb::core

#endif  // SEEDB_CORE_BIN_PACKING_H_
