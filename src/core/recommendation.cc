#include "core/recommendation.h"

#include "util/string_util.h"

namespace seedb::core {

std::string ExecutionProfile::ToString() const {
  std::string s = StringPrintf(
      "views: %zu enumerated, %zu pruned, %zu executed | queries: %zu "
      "(%zu scans, %llu rows) | time: plan %.3fms + exec %.3fms = %.3fms",
      views_enumerated, views_pruned, views_executed, queries_issued,
      table_scans, static_cast<unsigned long long>(rows_scanned),
      planning_seconds * 1e3, execution_seconds * 1e3, total_seconds * 1e3);
  if (phases_executed > 0) {
    s += StringPrintf(" | phases: %zu, %zu views pruned online, %zu examined",
                      phases_executed, views_pruned_online,
                      examined_view_count);
  }
  if (vectorized_morsels > 0) {
    s += StringPrintf(" | vectorized morsels: %llu (simd: %llu)",
                      static_cast<unsigned long long>(vectorized_morsels),
                      static_cast<unsigned long long>(simd_morsels));
  }
  if (cache_hits + cache_misses > 0) {
    s += StringPrintf(" | result cache: %llu hits, %llu misses",
                      static_cast<unsigned long long>(cache_hits),
                      static_cast<unsigned long long>(cache_misses));
  }
  if (early_stopped) s += " | early-stopped (CI-stable top-k)";
  if (cancelled) s += " | CANCELLED (partial results)";
  if (budget_exceeded) s += " | MEMORY BUDGET EXCEEDED (partial results)";
  return s;
}

}  // namespace seedb::core
