#include "core/view.h"

#include <tuple>

namespace seedb::core {
namespace {

// Column-name-safe token for a (measure, func) pair: "SUM_amount",
// "COUNT_star".
std::string AggToken(const ViewDescriptor& view) {
  std::string m = view.measure.empty() ? "star" : view.measure;
  return std::string(db::AggregateFunctionToSql(view.func)) + "_" + m;
}

}  // namespace

std::string ViewDescriptor::Id() const {
  std::string m = measure.empty() ? "*" : measure;
  return std::string(db::AggregateFunctionToSql(func)) + "(" + m + ") BY " +
         dimension;
}

bool ViewDescriptor::operator<(const ViewDescriptor& o) const {
  return std::tie(dimension, measure, func) <
         std::tie(o.dimension, o.measure, o.func);
}

size_t ViewDescriptorHash::operator()(const ViewDescriptor& v) const {
  size_t h = std::hash<std::string>{}(v.dimension);
  h = h * 31 + std::hash<std::string>{}(v.measure);
  h = h * 31 + static_cast<size_t>(v.func);
  return h;
}

std::string TargetColumnName(const ViewDescriptor& view) {
  return AggToken(view) + "_tgt";
}

std::string ComparisonColumnName(const ViewDescriptor& view) {
  return AggToken(view) + "_cmp";
}

db::GroupByQuery TargetViewQuery(const ViewDescriptor& view,
                                 const std::string& table,
                                 db::PredicatePtr selection) {
  db::GroupByQuery q;
  q.table = table;
  q.where = std::move(selection);
  q.group_by = {view.dimension};
  q.aggregates = {db::AggregateSpec::Make(view.func, view.measure,
                                          TargetColumnName(view))};
  return q;
}

db::GroupByQuery ComparisonViewQuery(const ViewDescriptor& view,
                                     const std::string& table) {
  db::GroupByQuery q;
  q.table = table;
  q.group_by = {view.dimension};
  q.aggregates = {db::AggregateSpec::Make(view.func, view.measure,
                                          ComparisonColumnName(view))};
  return q;
}

db::GroupByQuery CombinedViewQuery(const ViewDescriptor& view,
                                   const std::string& table,
                                   db::PredicatePtr selection) {
  db::GroupByQuery q;
  q.table = table;
  q.group_by = {view.dimension};
  q.aggregates = {
      db::AggregateSpec::Make(view.func, view.measure, TargetColumnName(view),
                              std::move(selection)),
      db::AggregateSpec::Make(view.func, view.measure,
                              ComparisonColumnName(view)),
  };
  return q;
}

}  // namespace seedb::core
