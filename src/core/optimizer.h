// The Optimizer module (§3.1, §3.3): combines view queries to minimize total
// execution time.
//
// Given the post-pruning candidate views, the optimizer emits an
// ExecutionPlan — a list of engine queries plus, for every view, the mapping
// from query outputs back to the view's target and comparison halves. The
// three §3.3 query-combining optimizations are independent toggles:
//
//   * combine_target_comparison — one scan computes both halves via
//     conditional aggregation (FILTER), instead of two queries per view.
//   * combine_aggregates — all views sharing a grouping attribute ride in
//     one query with multiple aggregate columns.
//   * combine_group_bys — multiple grouping attributes ride in one
//     GROUPING SETS query; which attributes share a query is decided by
//     bin-packing their estimated aggregation-state footprints against a
//     working-memory budget (core/bin_packing.h).
//
// With everything disabled the plan is the §3.3 "basic framework": two
// independent queries per view.

#ifndef SEEDB_CORE_OPTIMIZER_H_
#define SEEDB_CORE_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/bin_packing.h"
#include "core/view.h"
#include "db/statistics.h"

namespace seedb::core {

struct OptimizerOptions {
  bool combine_target_comparison = true;
  bool combine_aggregates = true;
  bool combine_group_bys = true;

  /// Working-memory budget for combined group-bys.
  uint64_t memory_budget_bytes = 64ull << 20;
  /// Hard cap on grouping sets per query (0 = memory-bound only).
  size_t max_group_bys_per_query = 0;

  /// Execute view queries against a Bernoulli sample of this fraction
  /// (§3.3 "Sampling"); 1 = full data.
  double sample_fraction = 1.0;
  uint64_t sample_seed = 0;

  /// Groups to assume for a dimension with no statistics.
  size_t default_group_estimate = 1024;

  /// §3.3 "basic framework": no sharing at all.
  static OptimizerOptions Baseline() {
    OptimizerOptions o;
    o.combine_target_comparison = false;
    o.combine_aggregates = false;
    o.combine_group_bys = false;
    return o;
  }
  static OptimizerOptions All() { return OptimizerOptions{}; }
};

/// Which halves of a view a planned query produces.
enum class QueryHalf { kCombined, kTargetOnly, kComparisonOnly };

const char* QueryHalfToString(QueryHalf half);

/// Where one view's data lands inside one planned query's results.
struct ViewSlot {
  ViewDescriptor view;
  /// Index into the query's result-set list (= grouping set index).
  size_t result_index = 0;
  /// Output column names; empty when this query does not produce that half.
  std::string target_column;
  std::string comparison_column;
};

/// One engine query plus its view slots.
struct PlannedQuery {
  db::GroupingSetsQuery query;
  QueryHalf half = QueryHalf::kCombined;
  std::vector<ViewSlot> slots;
};

struct ExecutionPlan {
  std::vector<PlannedQuery> queries;
  size_t num_views = 0;

  size_t num_queries() const { return queries.size(); }
  /// Every query is exactly one table scan in the engine's cost model.
  size_t predicted_scans() const { return queries.size(); }

  /// Multi-line human-readable plan (SQL per query).
  std::string Describe() const;
};

/// Builds the execution plan for `views` over `table_name` with analyst
/// selection `selection` (null = whole table). `stats` supplies per-dimension
/// group-count estimates for bin packing.
Result<ExecutionPlan> BuildExecutionPlan(
    const std::vector<ViewDescriptor>& views, const std::string& table_name,
    db::PredicatePtr selection, const db::TableStats& stats,
    const OptimizerOptions& options);

}  // namespace seedb::core

#endif  // SEEDB_CORE_OPTIMIZER_H_
