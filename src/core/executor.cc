#include "core/executor.h"

#include <algorithm>
#include <mutex>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace seedb::core {

const char* ExecutionStrategyToString(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kPerQuery:
      return "per-query";
    case ExecutionStrategy::kSharedScan:
      return "shared-scan";
  }
  return "?";
}

double ExecutionReport::MeanQuerySeconds() const {
  if (query_seconds.empty()) return 0.0;
  double total = 0.0;
  for (double s : query_seconds) total += s;
  return total / static_cast<double>(query_seconds.size());
}

double ExecutionReport::MaxQuerySeconds() const {
  if (query_seconds.empty()) return 0.0;
  return *std::max_element(query_seconds.begin(), query_seconds.end());
}

Result<std::vector<ViewResult>> ExecutePlan(db::Engine* engine,
                                            const ExecutionPlan& plan,
                                            DistanceMetric metric,
                                            const ExecutorOptions& options,
                                            ExecutionReport* report) {
  Stopwatch total_timer;
  ViewProcessor processor(metric);
  std::vector<double> query_seconds(plan.queries.size(), 0.0);

  if (options.strategy == ExecutionStrategy::kSharedScan &&
      !plan.queries.empty()) {
    std::vector<db::GroupingSetsQuery> queries;
    queries.reserve(plan.queries.size());
    for (const PlannedQuery& pq : plan.queries) queries.push_back(pq.query);
    db::SharedScanOptions scan;
    scan.num_threads = options.parallelism;
    scan.morsel_rows = options.morsel_rows;
    Stopwatch qt;
    SEEDB_ASSIGN_OR_RETURN(std::vector<std::vector<db::Table>> all,
                           engine->ExecuteShared(queries, scan));
    double fused = qt.ElapsedSeconds();
    for (size_t i = 0; i < plan.queries.size(); ++i) {
      SEEDB_RETURN_IF_ERROR(
          processor.Consume(plan.queries[i], std::move(all[i])));
    }
    std::fill(query_seconds.begin(), query_seconds.end(),
              fused / static_cast<double>(plan.queries.size()));
  } else if (options.parallelism <= 1) {
    for (size_t i = 0; i < plan.queries.size(); ++i) {
      Stopwatch qt;
      SEEDB_ASSIGN_OR_RETURN(std::vector<db::Table> results,
                             engine->Execute(plan.queries[i].query));
      query_seconds[i] = qt.ElapsedSeconds();
      SEEDB_RETURN_IF_ERROR(
          processor.Consume(plan.queries[i], std::move(results)));
    }
  } else {
    // Parallel execution: queries run concurrently on the pool; consumption
    // (cheap) is serialized under a mutex.
    ThreadPool pool(options.parallelism);
    std::mutex mu;
    Status first_error = Status::OK();
    pool.ParallelFor(0, plan.queries.size(), [&](size_t i) {
      Stopwatch qt;
      auto result = engine->Execute(plan.queries[i].query);
      double elapsed = qt.ElapsedSeconds();
      std::lock_guard<std::mutex> lock(mu);
      query_seconds[i] = elapsed;
      if (!result.ok()) {
        if (first_error.ok()) first_error = result.status();
        return;
      }
      if (first_error.ok()) {
        Status s =
            processor.Consume(plan.queries[i], std::move(result).ValueOrDie());
        if (!s.ok()) first_error = s;
      }
    });
    if (!first_error.ok()) return first_error;
  }

  SEEDB_ASSIGN_OR_RETURN(std::vector<ViewResult> views, processor.Finish());
  if (report) {
    report->total_seconds = total_timer.ElapsedSeconds();
    report->query_seconds = std::move(query_seconds);
  }
  return views;
}

}  // namespace seedb::core
