#include "core/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "base/mutex.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace seedb::core {

const char* ExecutionStrategyToString(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kPerQuery:
      return "per-query";
    case ExecutionStrategy::kSharedScan:
      return "shared-scan";
    case ExecutionStrategy::kPhasedSharedScan:
      return "phased-shared-scan";
  }
  return "?";
}

namespace {

double MeanOf(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double total = 0.0;
  for (double s : v) total += s;
  return total / static_cast<double>(v.size());
}

}  // namespace

double ExecutionReport::MeanQuerySeconds() const {
  return MeanOf(query_seconds);
}

double ExecutionReport::MaxQuerySeconds() const {
  if (query_seconds.empty()) return 0.0;
  return *std::max_element(query_seconds.begin(), query_seconds.end());
}

double ExecutionReport::MeanPhaseSeconds() const {
  return MeanOf(phase_seconds);
}

bool RanksBefore(const ViewEstimate& a, const ViewEstimate& b) {
  if (a.utility != b.utility) return a.utility > b.utility;
  return a.view.Id() < b.view.Id();
}

namespace {

db::SharedScanOptions MakeScanOptions(const ExecutorOptions& options) {
  db::SharedScanOptions scan;
  scan.num_threads = options.parallelism;
  scan.morsel_rows = options.morsel_rows;
  scan.cancel = options.cancel;
  scan.enable_simd = options.enable_simd;
  scan.trace = options.trace;
  // The MAB pruner halves by per-phase estimate ORDER, and cache adoption
  // makes adopted views' estimates final from phase 1 — a warm MAB run
  // would halve different views than the cold run that seeded it. Bypass
  // the cache so warm and cold MAB runs stay bit-identical; the safe CI
  // pruner (bound-based, never discards a potential top-k view) adopts
  // freely.
  scan.use_result_cache =
      options.online_pruning.pruner != OnlinePruner::kMultiArmedBandit;
  return scan;
}

bool CancelRequested(const ExecutorOptions& options) {
  return options.cancel != nullptr &&
         options.cancel->load(std::memory_order_relaxed);
}

std::vector<db::GroupingSetsQuery> PlanQueries(const ExecutionPlan& plan) {
  std::vector<db::GroupingSetsQuery> queries;
  queries.reserve(plan.queries.size());
  for (const PlannedQuery& pq : plan.queries) queries.push_back(pq.query);
  return queries;
}

// The one-shot fused scan (kSharedScan) is the phased machinery with a
// single phase and no pruner — one code path handles cancellation,
// partial-result materialization and reporting for both fused strategies.
ExecutorOptions SinglePhaseOptions(const ExecutorOptions& options) {
  ExecutorOptions run = options;
  run.online_pruning.num_phases = 1;
  run.online_pruning.pruner = OnlinePruner::kNone;
  run.online_pruning.early_stop_stable_phases = 0;
  return run;
}

}  // namespace

PhasedPlanExecution::PhasedPlanExecution(const ExecutionPlan* plan,
                                         DistanceMetric metric,
                                         ExecutorOptions options,
                                         db::SharedScanSession session)
    : plan_(plan),
      metric_(metric),
      options_(std::move(options)),
      session_(std::move(session)),
      live_slots_(plan->queries.size(), 0),
      pruner_(0, options_.online_pruning) {
  // Dense view index across the plan, plus the wiring from each view to the
  // planned queries carrying one of its halves. A query is retired from the
  // scan once every view riding on it has been pruned.
  for (size_t q = 0; q < plan_->queries.size(); ++q) {
    for (const ViewSlot& slot : plan_->queries[q].slots) {
      auto [it, inserted] = view_index_.emplace(slot.view, views_.size());
      if (inserted) {
        views_.push_back(slot.view);
        queries_of_view_.emplace_back();
      }
      queries_of_view_[it->second].push_back(q);
      ++live_slots_[q];
    }
  }
  pruner_ = OnlinePruningState(views_.size(), options_.online_pruning);
  total_phases_ = std::max<size_t>(1, options_.online_pruning.num_phases);
  phase_seconds_.reserve(total_phases_);
}

Result<double> AutoUtilityRange(db::Engine* engine, const ExecutionPlan& plan,
                                DistanceMetric metric) {
  if (plan.queries.empty()) return MetricUtilityRange(metric, 1);
  SEEDB_ASSIGN_OR_RETURN(
      const db::TableStats* stats,
      engine->catalog()->GetStats(plan.queries[0].query.table));
  double range = 0.0;
  for (const PlannedQuery& pq : plan.queries) {
    for (const ViewSlot& slot : pq.slots) {
      size_t groups = 1;
      if (Result<const db::ColumnStats*> col =
              stats->Find(slot.view.dimension);
          col.ok()) {
        groups = (*col)->distinct_count + ((*col)->null_count > 0 ? 1 : 0);
      }
      range = std::max(range, MetricUtilityRange(metric, groups));
    }
  }
  return range > 0.0 ? range : MetricUtilityRange(metric, 1);
}

Result<PhasedPlanExecution> PhasedPlanExecution::Begin(
    db::Engine* engine, const ExecutionPlan& plan, DistanceMetric metric,
    const ExecutorOptions& options) {
  ExecutorOptions resolved = options;
  // utility_range <= 0 asks for auto-calibration from the metric and the
  // plan's per-view group counts (the EMD case the manual knob cannot
  // cover); every CI computation downstream sees the resolved range.
  if (resolved.online_pruning.utility_range <= 0.0) {
    SEEDB_ASSIGN_OR_RETURN(resolved.online_pruning.utility_range,
                           AutoUtilityRange(engine, plan, metric));
  }
  SEEDB_ASSIGN_OR_RETURN(
      db::SharedScanSession session,
      engine->BeginShared(PlanQueries(plan), MakeScanOptions(resolved)));
  PhasedPlanExecution run(&plan, metric, resolved, std::move(session));
  // Same bit-identity gate as MakeScanOptions: prior-tightened intervals
  // would also shift the MAB's estimate-order halving.
  if (db::PartialAggCache* cache = engine->result_cache();
      cache != nullptr && resolved.online_pruning.pruner !=
                              OnlinePruner::kMultiArmedBandit) {
    run.SeedUtilityPriors(
        cache,
        engine->catalog()->TableVersion(plan.queries[0].query.table));
  }
  return run;
}

void PhasedPlanExecution::SeedUtilityPriors(db::PartialAggCache* cache,
                                            uint64_t table_version) {
  prior_cache_ = cache;
  prior_key_prefix_ = StringPrintf(
      "%s#v%llu|%s|u:", plan_->queries[0].query.table.c_str(),
      static_cast<unsigned long long>(table_version),
      DistanceMetricToString(metric_));
  if (views_.empty()) return;
  std::vector<double> priors(views_.size(), 0.0);
  uint64_t min_weight = std::numeric_limits<uint64_t>::max();
  for (size_t v = 0; v < views_.size(); ++v) {
    double utility = 0.0;
    uint64_t weight = 0;
    if (!cache->LookupUtilityPrior(prior_key_prefix_ + views_[v].Id(),
                                   &utility, &weight)) {
      return;  // a cold view: warm-starting the rest would mis-prune it
    }
    priors[v] = utility;
    min_weight = std::min(min_weight, weight);
  }
  options_.online_pruning.prior_estimates = std::move(priors);
  options_.online_pruning.prior_weight = static_cast<size_t>(min_weight);
  pruner_ = OnlinePruningState(views_.size(), options_.online_pruning);
}

bool PhasedPlanExecution::done() const {
  return finished_ || cancelled_ || early_stopped_ ||
         phases_run() >= total_phases_;
}

size_t PhasedPlanExecution::rows_consumed() const {
  return session_.rows_consumed();
}

size_t PhasedPlanExecution::num_rows() const { return session_.num_rows(); }

size_t PhasedPlanExecution::agg_state_bytes() const {
  return session_.stats().agg_state_bytes;
}

Status PhasedPlanExecution::Resume() {
  if (finished_) {
    return Status::Internal("phased execution already finished");
  }
  if (!cancelled_) {
    return Status::InvalidArgument("phased execution is not cancelled");
  }
  if (session_.cancelled()) {
    SEEDB_RETURN_IF_ERROR(session_.ResumeAfterCancel());
    // The token may have fired again mid-resume; stay cancelled then.
    if (session_.cancelled()) return Status::OK();
  }
  cancelled_ = false;
  return Status::OK();
}

// Scores every surviving view on its running (un-finalized) aggregates.
// Early slices can leave a view with two empty halves (nothing matched
// yet), which has no defined utility — callers skip that boundary rather
// than act on undefined estimates; the next boundary sees more rows.
Result<std::vector<ViewEstimate>> PhasedPlanExecution::EstimateSurvivors()
    const {
  const auto include_active = [this](const ViewDescriptor& v) {
    auto it = view_index_.find(v);
    return it != view_index_.end() && pruner_.IsActive(it->second);
  };
  ViewProcessor estimator(metric_);
  for (size_t q = 0; q < plan_->queries.size(); ++q) {
    if (!session_.query_active(q)) continue;
    SEEDB_ASSIGN_OR_RETURN(std::vector<db::Table> partial,
                           session_.PartialResults(q));
    SEEDB_RETURN_IF_ERROR(
        estimator.Consume(plan_->queries[q], std::move(partial),
                          include_active));
  }
  SEEDB_ASSIGN_OR_RETURN(std::vector<ViewResult> scored, estimator.Finish());
  std::vector<ViewEstimate> estimates;
  estimates.reserve(scored.size());
  for (const ViewResult& vr : scored) {
    estimates.push_back({vr.view, vr.utility});
  }
  return estimates;
}

// The top-k is "CI-stable" when the same ordered top-k appeared at
// `early_stop_stable_phases` consecutive boundaries and every adjacent pair
// in the ranking — including the boundary pair against the best excluded
// view — is separated by more than 2*eps, i.e. the intervals cannot overlap
// into a swap. Conservative by construction: infinite eps (delta <= 0)
// never stops, reproducing the exhaustive scan.
bool PhasedPlanExecution::EvaluateEarlyStop(
    const std::vector<ViewEstimate>& estimates, double eps) {
  const size_t stable = options_.online_pruning.early_stop_stable_phases;
  if (stable == 0 || estimates.empty()) return false;
  const size_t k = std::max<size_t>(1, options_.online_pruning.keep_k);

  std::vector<const ViewEstimate*> order;
  order.reserve(estimates.size());
  for (const ViewEstimate& e : estimates) order.push_back(&e);
  std::sort(order.begin(), order.end(),
            [](const ViewEstimate* a, const ViewEstimate* b) {
              return RanksBefore(*a, *b);
            });

  std::vector<std::string> top_ids;
  const size_t top_n = std::min(k, order.size());
  top_ids.reserve(top_n);
  for (size_t i = 0; i < top_n; ++i) top_ids.push_back(order[i]->view.Id());
  stable_streak_ = top_ids == last_top_ids_ ? stable_streak_ + 1 : 1;
  last_top_ids_ = std::move(top_ids);
  if (stable_streak_ < stable || !std::isfinite(eps)) return false;

  // Adjacent separation over the top-k plus the best excluded view.
  const size_t pairs = std::min(order.size() - 1, k);
  for (size_t i = 0; i < pairs; ++i) {
    if (order[i]->utility - eps <= order[i + 1]->utility + eps) return false;
  }
  return true;
}

Result<PhaseSnapshot> PhasedPlanExecution::Step(bool collect_estimates) {
  if (done()) {
    return Status::Internal("phased execution already done");
  }
  Stopwatch phase_timer;
  const size_t p = phases_run();
  const size_t n = session_.num_rows();
  const size_t begin = n * p / total_phases_;
  const size_t end = n * (p + 1) / total_phases_;
  SEEDB_RETURN_IF_ERROR(session_.RunPhase(begin, end));

  PhaseSnapshot snap;
  snap.phase = p + 1;
  snap.total_phases = total_phases_;
  snap.views_active = pruner_.num_active();
  snap.views_pruned = pruner_.views_pruned();

  if (session_.cancelled()) {
    cancelled_ = true;
    snap.cancelled = true;
    snap.rows_consumed = session_.rows_consumed();
    // The cut-short phase observed no boundary: report the width the
    // PREVIOUS boundaries earned (infinite before the first one) — never
    // the zero-default, which would read as perfect confidence on the
    // least-trustworthy estimates of the run.
    snap.ci_half_width = OnlinePruningState::ConfidenceHalfWidth(
        options_.online_pruning, boundaries_observed_);
    phase_seconds_.push_back(phase_timer.ElapsedSeconds());
    snap.phase_seconds = phase_seconds_.back();
    return snap;
  }

  const OnlinePruningOptions& popts = options_.online_pruning;
  const bool boundary = p + 1 < total_phases_;
  const bool want_prune =
      boundary && popts.pruner != OnlinePruner::kNone && popts.keep_k > 0 &&
      pruner_.num_active() > popts.keep_k && session_.rows_consumed() > 0;
  const bool want_early_stop =
      boundary && popts.early_stop_stable_phases > 0;
  ++boundaries_observed_;
  snap.ci_half_width =
      OnlinePruningState::ConfidenceHalfWidth(popts, boundaries_observed_);

  if ((want_prune || want_early_stop || collect_estimates) &&
      session_.rows_consumed() > 0) {
    Result<std::vector<ViewEstimate>> estimates = EstimateSurvivors();
    if (estimates.ok()) {
      if (want_prune) {
        std::vector<double> utilities(views_.size(), 0.0);
        for (const ViewEstimate& e : *estimates) {
          utilities[view_index_.at(e.view)] = e.utility;
        }
        for (size_t v : pruner_.Observe(utilities)) {
          online_pruned_.push_back({views_[v], utilities[v], snap.phase,
                                    session_.rows_consumed()});
          for (size_t q : queries_of_view_[v]) {
            if (--live_slots_[q] == 0 && session_.query_active(q)) {
              SEEDB_RETURN_IF_ERROR(session_.DeactivateQuery(q));
              ++queries_deactivated_;
            }
          }
        }
        // Drop the newly pruned views from the boundary estimates so the
        // snapshot (and the early-stop policy) see survivors only.
        std::erase_if(*estimates, [this](const ViewEstimate& e) {
          return !pruner_.IsActive(view_index_.at(e.view));
        });
      }
      if (want_early_stop &&
          EvaluateEarlyStop(*estimates, snap.ci_half_width)) {
        early_stopped_ = true;
        snap.early_stopped = true;
      }
      if (collect_estimates) {
        snap.has_estimates = true;
        snap.estimates = std::move(*estimates);
      }
    }
  }

  snap.views_active = pruner_.num_active();
  snap.views_pruned = pruner_.views_pruned();
  snap.rows_consumed = session_.rows_consumed();
  phase_seconds_.push_back(phase_timer.ElapsedSeconds());
  snap.phase_seconds = phase_seconds_.back();
  return snap;
}

Result<std::vector<ViewResult>> PhasedPlanExecution::Finish(
    ExecutionReport* report) {
  if (finished_) {
    return Status::Internal("phased execution already finished");
  }
  finished_ = true;
  Stopwatch finalize_timer;
  const auto include_active = [this](const ViewDescriptor& v) {
    auto it = view_index_.find(v);
    return it != view_index_.end() && pruner_.IsActive(it->second);
  };
  ViewProcessor processor(metric_);
  SEEDB_ASSIGN_OR_RETURN(std::vector<std::vector<db::Table>> all,
                         session_.Finalize());
  for (size_t q = 0; q < plan_->queries.size(); ++q) {
    if (!session_.query_active(q)) continue;
    SEEDB_RETURN_IF_ERROR(
        processor.Consume(plan_->queries[q], std::move(all[q]),
                          include_active));
  }
  if (report) {
    report->phase_seconds = phase_seconds_;
    report->phases_executed = phases_run();
    report->views_pruned_online = pruner_.views_pruned();
    report->online_pruned = online_pruned_;
    report->queries_deactivated = queries_deactivated_;
    report->early_stopped = early_stopped_;
    report->cancelled = cancelled_;
    report->total_seconds = finalize_timer.ElapsedSeconds();
    for (double s : phase_seconds_) report->total_seconds += s;
    // Exact per-run engine work, mirroring what Finalize() just folded into
    // the engine counters (one scan per batch, every query counted).
    report->queries_executed = plan_->queries.size();
    report->table_scans = 1;
    const db::SharedScanStats scan_stats = session_.stats();
    report->rows_scanned = scan_stats.rows_scanned;
    report->vectorized_morsels = scan_stats.vectorized_morsels;
    report->simd_morsels = scan_stats.simd_morsels;
    report->agg_state_bytes = scan_stats.agg_state_bytes;
    report->cache_hits = scan_stats.cache_hits;
    report->cache_misses = scan_stats.cache_misses;
  }
  // A run that stopped before consuming every row (cancelled, or stopped
  // before the first phase) can hold views with no data at all; drop those
  // instead of failing. Fully scanned runs keep the strict check.
  const bool partial =
      cancelled_ || session_.rows_consumed() < session_.num_rows();
  SEEDB_ASSIGN_OR_RETURN(std::vector<ViewResult> results,
                         processor.Finish(/*allow_partial=*/partial));
  // Publish warm-start priors: only a full, un-cancelled scan's utilities
  // are exact, and their evidence weight is the phases that produced them.
  if (prior_cache_ != nullptr && !partial) {
    for (const ViewResult& vr : results) {
      prior_cache_->PutUtilityPrior(prior_key_prefix_ + vr.view.Id(),
                                    vr.utility, phases_run());
    }
  }
  return results;
}

Result<std::vector<ViewResult>> ExecutePlan(db::Engine* engine,
                                            const ExecutionPlan& plan,
                                            DistanceMetric metric,
                                            const ExecutorOptions& options,
                                            ExecutionReport* report) {
  Stopwatch total_timer;

  if (options.strategy != ExecutionStrategy::kPerQuery &&
      !plan.queries.empty()) {
    SEEDB_ASSIGN_OR_RETURN(
        PhasedPlanExecution run,
        PhasedPlanExecution::Begin(
            engine, plan, metric,
            options.strategy == ExecutionStrategy::kSharedScan
                ? SinglePhaseOptions(options)
                : options));
    bool budget_exceeded = false;
    while (!run.done()) {
      SEEDB_RETURN_IF_ERROR(run.Step(/*collect_estimates=*/false).status());
      // Budget metering at the phase boundary (the one boundary a
      // single-phase kSharedScan run has): a breach stops the scan here and
      // the run finishes gracefully on the rows already merged.
      if (options.memory_budget_bytes > 0 &&
          run.agg_state_bytes() > options.memory_budget_bytes) {
        budget_exceeded = true;
        break;
      }
    }
    Result<std::vector<ViewResult>> views = run.Finish(report);
    SEEDB_RETURN_IF_ERROR(views.status());
    if (report) {
      report->total_seconds = total_timer.ElapsedSeconds();
      report->budget_exceeded = budget_exceeded;
    }
    return views;
  }

  ViewProcessor processor(metric);
  bool cancelled = false;
  bool budget_exceeded = false;
  size_t queries_executed = 0;
  size_t agg_state_bytes = 0;
  std::vector<double> query_seconds(plan.queries.size(), 0.0);
  // The per-query analogue of the fused scan's merged-state footprint: all
  // result groups are retained in the processor until Finish, so the
  // metered unit is the cumulative groups x aggregates x sizeof(AggState)
  // across the queries executed so far.
  const auto result_bytes = [](const PlannedQuery& pq,
                               const std::vector<db::Table>& results) {
    size_t groups = 0;
    for (const db::Table& t : results) groups += t.num_rows();
    return groups * pq.query.aggregates.size() * sizeof(db::AggState);
  };
  if (options.parallelism <= 1) {
    for (size_t i = 0; i < plan.queries.size(); ++i) {
      if (CancelRequested(options)) {
        cancelled = true;
        break;
      }
      Stopwatch qt;
      SEEDB_ASSIGN_OR_RETURN(std::vector<db::Table> results,
                             engine->Execute(plan.queries[i].query));
      query_seconds[i] = qt.ElapsedSeconds();
      ++queries_executed;
      agg_state_bytes += result_bytes(plan.queries[i], results);
      SEEDB_RETURN_IF_ERROR(
          processor.Consume(plan.queries[i], std::move(results)));
      if (options.memory_budget_bytes > 0 &&
          agg_state_bytes > options.memory_budget_bytes) {
        budget_exceeded = true;
        break;
      }
    }
  } else {
    // Parallel execution: queries run concurrently on the pool; consumption
    // (cheap) is serialized under a mutex. A budget breach stops further
    // queries from being issued, like cancellation.
    ThreadPool pool(options.parallelism);
    base::Mutex mu;
    Status first_error = Status::OK();
    pool.ParallelFor(0, plan.queries.size(), [&](size_t i) {
      if (CancelRequested(options)) {
        base::MutexLock lock(&mu);
        cancelled = true;
        return;
      }
      {
        base::MutexLock lock(&mu);
        if (budget_exceeded) return;
      }
      Stopwatch qt;
      auto result = engine->Execute(plan.queries[i].query);
      double elapsed = qt.ElapsedSeconds();
      base::MutexLock lock(&mu);
      query_seconds[i] = elapsed;
      ++queries_executed;
      if (!result.ok()) {
        if (first_error.ok()) first_error = result.status();
        return;
      }
      if (first_error.ok()) {
        agg_state_bytes += result_bytes(plan.queries[i], *result);
        Status s =
            processor.Consume(plan.queries[i], std::move(result).ValueOrDie());
        if (!s.ok()) first_error = s;
        if (options.memory_budget_bytes > 0 &&
            agg_state_bytes > options.memory_budget_bytes) {
          budget_exceeded = true;
        }
      }
    });
    if (!first_error.ok()) return first_error;
  }

  // A cancelled or budget-stopped per-query run may hold views with only
  // one half consumed (the other query never ran); those are dropped rather
  // than scored.
  SEEDB_ASSIGN_OR_RETURN(
      std::vector<ViewResult> results,
      processor.Finish(/*allow_partial=*/cancelled || budget_exceeded));
  if (report) {
    report->total_seconds = total_timer.ElapsedSeconds();
    report->query_seconds = std::move(query_seconds);
    report->cancelled = cancelled;
    report->budget_exceeded = budget_exceeded;
    report->queries_executed = queries_executed;
    report->agg_state_bytes = agg_state_bytes;
  }
  return results;
}

}  // namespace seedb::core
