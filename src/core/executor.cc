#include "core/executor.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace seedb::core {

const char* ExecutionStrategyToString(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kPerQuery:
      return "per-query";
    case ExecutionStrategy::kSharedScan:
      return "shared-scan";
    case ExecutionStrategy::kPhasedSharedScan:
      return "phased-shared-scan";
  }
  return "?";
}

namespace {

double MeanOf(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double total = 0.0;
  for (double s : v) total += s;
  return total / static_cast<double>(v.size());
}

}  // namespace

double ExecutionReport::MeanQuerySeconds() const {
  return MeanOf(query_seconds);
}

double ExecutionReport::MaxQuerySeconds() const {
  if (query_seconds.empty()) return 0.0;
  return *std::max_element(query_seconds.begin(), query_seconds.end());
}

double ExecutionReport::MeanPhaseSeconds() const {
  return MeanOf(phase_seconds);
}

namespace {

db::SharedScanOptions MakeScanOptions(const ExecutorOptions& options) {
  db::SharedScanOptions scan;
  scan.num_threads = options.parallelism;
  scan.morsel_rows = options.morsel_rows;
  return scan;
}

std::vector<db::GroupingSetsQuery> PlanQueries(const ExecutionPlan& plan) {
  std::vector<db::GroupingSetsQuery> queries;
  queries.reserve(plan.queries.size());
  for (const PlannedQuery& pq : plan.queries) queries.push_back(pq.query);
  return queries;
}

// The whole plan in ONE fused pass.
Result<std::vector<ViewResult>> ExecuteFused(db::Engine* engine,
                                             const ExecutionPlan& plan,
                                             ViewProcessor* processor,
                                             const ExecutorOptions& options,
                                             ExecutionReport* report) {
  Stopwatch qt;
  SEEDB_ASSIGN_OR_RETURN(
      std::vector<std::vector<db::Table>> all,
      engine->ExecuteShared(PlanQueries(plan), MakeScanOptions(options)));
  double fused = qt.ElapsedSeconds();
  for (size_t i = 0; i < plan.queries.size(); ++i) {
    SEEDB_RETURN_IF_ERROR(
        processor->Consume(plan.queries[i], std::move(all[i])));
  }
  if (report) {
    report->phase_seconds.assign(1, fused);
    report->phases_executed = 1;
  }
  return processor->Finish();
}

// The fused pass split into sequential row-range phases with online view
// pruning at each boundary (§3.3 "Pruning Optimizations").
Result<std::vector<ViewResult>> ExecutePhased(db::Engine* engine,
                                              const ExecutionPlan& plan,
                                              DistanceMetric metric,
                                              ViewProcessor* processor,
                                              const ExecutorOptions& options,
                                              ExecutionReport* report) {
  SEEDB_ASSIGN_OR_RETURN(
      db::SharedScanSession session,
      engine->BeginShared(PlanQueries(plan), MakeScanOptions(options)));

  // Dense view index across the plan, plus the wiring from each view to the
  // planned queries carrying one of its halves. A query is retired from the
  // scan once every view riding on it has been pruned.
  std::vector<ViewDescriptor> views;
  std::unordered_map<ViewDescriptor, size_t, ViewDescriptorHash> view_index;
  std::vector<std::vector<size_t>> queries_of_view;
  std::vector<size_t> live_slots(plan.queries.size(), 0);
  for (size_t q = 0; q < plan.queries.size(); ++q) {
    for (const ViewSlot& slot : plan.queries[q].slots) {
      auto [it, inserted] = view_index.emplace(slot.view, views.size());
      if (inserted) {
        views.push_back(slot.view);
        queries_of_view.emplace_back();
      }
      queries_of_view[it->second].push_back(q);
      ++live_slots[q];
    }
  }

  const OnlinePruningOptions& popts = options.online_pruning;
  const size_t num_phases = std::max<size_t>(1, popts.num_phases);
  OnlinePruningState pruner(views.size(), popts);
  const auto include_active = [&](const ViewDescriptor& v) {
    auto it = view_index.find(v);
    return it != view_index.end() && pruner.IsActive(it->second);
  };

  const size_t n = session.num_rows();
  size_t queries_deactivated = 0;
  std::vector<double> phase_seconds;
  phase_seconds.reserve(num_phases);

  for (size_t p = 0; p < num_phases; ++p) {
    Stopwatch phase_timer;
    const size_t begin = n * p / num_phases;
    const size_t end = n * (p + 1) / num_phases;
    SEEDB_RETURN_IF_ERROR(session.RunPhase(begin, end));

    const bool boundary = p + 1 < num_phases;
    if (boundary && popts.pruner != OnlinePruner::kNone && popts.keep_k > 0 &&
        pruner.num_active() > popts.keep_k && session.rows_consumed() > 0) {
      // Score every surviving view on its running aggregates. Early slices
      // can leave a view with two empty halves (nothing matched yet), which
      // has no defined utility — skip this boundary rather than prune on
      // undefined estimates; the next boundary sees more rows.
      ViewProcessor estimator(metric);
      Status consumed = Status::OK();
      for (size_t q = 0; q < plan.queries.size() && consumed.ok(); ++q) {
        if (!session.query_active(q)) continue;
        SEEDB_ASSIGN_OR_RETURN(std::vector<db::Table> partial,
                               session.PartialResults(q));
        consumed = estimator.Consume(plan.queries[q], std::move(partial),
                                     include_active);
      }
      Result<std::vector<ViewResult>> estimates =
          consumed.ok() ? estimator.Finish()
                        : Result<std::vector<ViewResult>>(consumed);
      if (estimates.ok()) {
        std::vector<double> utilities(views.size(), 0.0);
        for (const ViewResult& vr : *estimates) {
          utilities[view_index.at(vr.view)] = vr.utility;
        }
        for (size_t v : pruner.Observe(utilities)) {
          for (size_t q : queries_of_view[v]) {
            if (--live_slots[q] == 0 && session.query_active(q)) {
              SEEDB_RETURN_IF_ERROR(session.DeactivateQuery(q));
              ++queries_deactivated;
            }
          }
        }
      }
    }
    phase_seconds.push_back(phase_timer.ElapsedSeconds());
  }

  SEEDB_ASSIGN_OR_RETURN(std::vector<std::vector<db::Table>> all,
                         session.Finalize());
  for (size_t q = 0; q < plan.queries.size(); ++q) {
    if (!session.query_active(q)) continue;
    SEEDB_RETURN_IF_ERROR(
        processor->Consume(plan.queries[q], std::move(all[q]),
                           include_active));
  }
  if (report) {
    report->phase_seconds = std::move(phase_seconds);
    report->phases_executed = num_phases;
    report->views_pruned_online = pruner.views_pruned();
    report->queries_deactivated = queries_deactivated;
  }
  return processor->Finish();
}

}  // namespace

Result<std::vector<ViewResult>> ExecutePlan(db::Engine* engine,
                                            const ExecutionPlan& plan,
                                            DistanceMetric metric,
                                            const ExecutorOptions& options,
                                            ExecutionReport* report) {
  Stopwatch total_timer;
  ViewProcessor processor(metric);

  if (options.strategy != ExecutionStrategy::kPerQuery &&
      !plan.queries.empty()) {
    Result<std::vector<ViewResult>> views =
        options.strategy == ExecutionStrategy::kSharedScan
            ? ExecuteFused(engine, plan, &processor, options, report)
            : ExecutePhased(engine, plan, metric, &processor, options, report);
    SEEDB_RETURN_IF_ERROR(views.status());
    if (report) report->total_seconds = total_timer.ElapsedSeconds();
    return views;
  }

  std::vector<double> query_seconds(plan.queries.size(), 0.0);
  if (options.parallelism <= 1) {
    for (size_t i = 0; i < plan.queries.size(); ++i) {
      Stopwatch qt;
      SEEDB_ASSIGN_OR_RETURN(std::vector<db::Table> results,
                             engine->Execute(plan.queries[i].query));
      query_seconds[i] = qt.ElapsedSeconds();
      SEEDB_RETURN_IF_ERROR(
          processor.Consume(plan.queries[i], std::move(results)));
    }
  } else {
    // Parallel execution: queries run concurrently on the pool; consumption
    // (cheap) is serialized under a mutex.
    ThreadPool pool(options.parallelism);
    std::mutex mu;
    Status first_error = Status::OK();
    pool.ParallelFor(0, plan.queries.size(), [&](size_t i) {
      Stopwatch qt;
      auto result = engine->Execute(plan.queries[i].query);
      double elapsed = qt.ElapsedSeconds();
      std::lock_guard<std::mutex> lock(mu);
      query_seconds[i] = elapsed;
      if (!result.ok()) {
        if (first_error.ok()) first_error = result.status();
        return;
      }
      if (first_error.ok()) {
        Status s =
            processor.Consume(plan.queries[i], std::move(result).ValueOrDie());
        if (!s.ok()) first_error = s;
      }
    });
    if (!first_error.ok()) return first_error;
  }

  SEEDB_ASSIGN_OR_RETURN(std::vector<ViewResult> results, processor.Finish());
  if (report) {
    report->total_seconds = total_timer.ElapsedSeconds();
    report->query_seconds = std::move(query_seconds);
  }
  return results;
}

}  // namespace seedb::core
