#include "core/templates.h"

#include <cmath>

#include "util/string_util.h"

namespace seedb::core {
namespace {

TemplateQuery MakeQuery(std::string description, const std::string& table,
                        db::PredicatePtr selection) {
  TemplateQuery q;
  q.description = std::move(description);
  q.sql = "SELECT * FROM " + table + " WHERE " + selection->ToSql();
  q.selection = std::move(selection);
  return q;
}

Result<const db::ColumnStats*> FindColumn(db::Engine* engine,
                                          const std::string& table,
                                          const std::string& column) {
  SEEDB_ASSIGN_OR_RETURN(const db::TableStats* stats,
                         engine->catalog()->GetStats(table));
  return stats->Find(column);
}

}  // namespace

Result<TemplateQuery> OutlierTemplate(db::Engine* engine,
                                      const std::string& table,
                                      const std::string& measure,
                                      double sigmas) {
  if (sigmas <= 0.0) {
    return Status::InvalidArgument("sigmas must be positive");
  }
  SEEDB_ASSIGN_OR_RETURN(const db::ColumnStats* cs,
                         FindColumn(engine, table, measure));
  if (cs->type != db::ValueType::kDouble &&
      cs->type != db::ValueType::kInt64) {
    return Status::InvalidArgument("column '" + measure +
                                   "' is not numeric");
  }
  double stddev = std::sqrt(cs->variance);
  if (stddev == 0.0) {
    return Status::InvalidArgument("column '" + measure +
                                   "' is constant; it has no outliers");
  }
  double lo = cs->mean - sigmas * stddev;
  double hi = cs->mean + sigmas * stddev;
  db::PredicatePtr selection(db::Or(db::Lt(measure, db::Value(lo)),
                                    db::Gt(measure, db::Value(hi))));
  return MakeQuery(
      StringPrintf("rows where %s is beyond %s standard deviations of its "
                   "mean (outside [%s, %s])",
                   measure.c_str(), FormatDouble(sigmas, 2).c_str(),
                   FormatDouble(lo, 2).c_str(), FormatDouble(hi, 2).c_str()),
      table, std::move(selection));
}

Result<TemplateQuery> TopValueTemplate(db::Engine* engine,
                                       const std::string& table,
                                       const std::string& dimension) {
  SEEDB_ASSIGN_OR_RETURN(const db::ColumnStats* cs,
                         FindColumn(engine, table, dimension));
  if (cs->top_values.empty()) {
    return Status::InvalidArgument("column '" + dimension +
                                   "' has no values");
  }
  const db::Value& top = cs->top_values.front().first;
  db::PredicatePtr selection(db::Eq(dimension, top));
  return MakeQuery(
      StringPrintf("rows holding %s's most frequent value (%s, %zu rows)",
                   dimension.c_str(), top.ToString().c_str(),
                   cs->top_values.front().second),
      table, std::move(selection));
}

Result<TemplateQuery> HighValueTemplate(db::Engine* engine,
                                        const std::string& table,
                                        const std::string& measure,
                                        double fraction) {
  if (fraction <= 0.0 || fraction >= 1.0) {
    return Status::InvalidArgument("fraction must be in (0, 1)");
  }
  SEEDB_ASSIGN_OR_RETURN(const db::ColumnStats* cs,
                         FindColumn(engine, table, measure));
  if (cs->type != db::ValueType::kDouble &&
      cs->type != db::ValueType::kInt64) {
    return Status::InvalidArgument("column '" + measure +
                                   "' is not numeric");
  }
  if (cs->max == cs->min) {
    return Status::InvalidArgument("column '" + measure +
                                   "' is constant; it has no high end");
  }
  double threshold = cs->max - fraction * (cs->max - cs->min);
  db::PredicatePtr selection(db::Ge(measure, db::Value(threshold)));
  return MakeQuery(
      StringPrintf("rows in the top %s%% of %s's range (>= %s)",
                   FormatDouble(fraction * 100.0, 0).c_str(),
                   measure.c_str(), FormatDouble(threshold, 2).c_str()),
      table, std::move(selection));
}

}  // namespace seedb::core
