#include "core/topk.h"

#include <algorithm>

namespace seedb::core {
namespace {

bool HigherUtility(const ViewResult& a, const ViewResult& b) {
  if (a.utility != b.utility) return a.utility > b.utility;
  return a.view.Id() < b.view.Id();
}

bool LowerUtility(const ViewResult& a, const ViewResult& b) {
  if (a.utility != b.utility) return a.utility < b.utility;
  return a.view.Id() < b.view.Id();
}

}  // namespace

std::vector<ViewResult> SelectTopK(std::vector<ViewResult> views, size_t k) {
  if (k == 0 || k >= views.size()) {
    std::sort(views.begin(), views.end(), HigherUtility);
    return views;
  }
  std::partial_sort(views.begin(), views.begin() + static_cast<long>(k),
                    views.end(), HigherUtility);
  views.resize(k);
  return views;
}

std::vector<ViewResult> SelectBottomK(std::vector<ViewResult> views,
                                      size_t k) {
  if (k == 0 || k >= views.size()) {
    std::sort(views.begin(), views.end(), LowerUtility);
    return views;
  }
  std::partial_sort(views.begin(), views.begin() + static_cast<long>(k),
                    views.end(), LowerUtility);
  views.resize(k);
  return views;
}

}  // namespace seedb::core
