#include "core/online_pruning.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace seedb::core {

const char* OnlinePrunerToString(OnlinePruner pruner) {
  switch (pruner) {
    case OnlinePruner::kNone:
      return "none";
    case OnlinePruner::kConfidenceInterval:
      return "ci";
    case OnlinePruner::kMultiArmedBandit:
      return "mab";
  }
  return "?";
}

Result<OnlinePruner> ParseOnlinePruner(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "none" || lower == "off") return OnlinePruner::kNone;
  if (lower == "ci" || lower == "confidence") {
    return OnlinePruner::kConfidenceInterval;
  }
  if (lower == "mab" || lower == "bandit") {
    return OnlinePruner::kMultiArmedBandit;
  }
  return Status::InvalidArgument("unknown online pruner '" + name +
                                 "' (expected none|ci|mab)");
}

OnlinePruningState::OnlinePruningState(size_t num_views,
                                       const OnlinePruningOptions& options)
    : options_(options),
      active_(num_views, 1),
      estimate_(num_views, 0.0) {
  if (!options_.prior_estimates.empty()) {
    for (size_t v = 0;
         v < num_views && v < options_.prior_estimates.size(); ++v) {
      estimate_[v] = options_.prior_estimates[v];
    }
    prior_phases_ = options_.prior_weight;
  }
}

size_t OnlinePruningState::num_active() const {
  return static_cast<size_t>(
      std::count(active_.begin(), active_.end(), uint8_t{1}));
}

double OnlinePruningState::ConfidenceHalfWidth(
    const OnlinePruningOptions& options, size_t phases_observed) {
  // utility_range <= 0 means "auto, not yet resolved" (the phased executor
  // resolves it from the metric and the plan's group counts at Begin); an
  // unresolved range must never read as zero-width intervals, which would
  // prune everything below the top k at the first boundary.
  if (options.delta <= 0.0 || options.utility_range <= 0.0 ||
      phases_observed == 0) {
    return std::numeric_limits<double>::infinity();
  }
  return options.utility_range *
         std::sqrt(std::log(2.0 / options.delta) /
                   (2.0 * static_cast<double>(phases_observed)));
}

std::vector<size_t> OnlinePruningState::Observe(
    const std::vector<double>& utilities) {
  ++phases_observed_;
  for (size_t v = 0; v < active_.size() && v < utilities.size(); ++v) {
    if (active_[v]) estimate_[v] = utilities[v];
  }
  if (options_.pruner == OnlinePruner::kNone || options_.keep_k == 0 ||
      phases_observed_ + prior_phases_ < options_.warmup_phases ||
      num_active() <= options_.keep_k) {
    return {};
  }
  std::vector<size_t> pruned =
      options_.pruner == OnlinePruner::kConfidenceInterval
          ? PruneByConfidenceInterval()
          : PruneBySuccessiveHalving();
  for (size_t v : pruned) active_[v] = 0;
  views_pruned_ += pruned.size();
  if (!pruned.empty()) {
    static obs::Counter* retired =
        obs::Registry::Global().GetCounter("engine.pruning.views_retired");
    retired->Add(pruned.size());
  }
  return pruned;
}

std::vector<size_t> OnlinePruningState::PruneByConfidenceInterval() {
  // Prior evidence counts as already-observed phases: warm intervals start
  // tight, which is the whole point of the cache's utility priors.
  double eps = ConfidenceHalfWidth(options_, phases_observed_ + prior_phases_);
  if (std::isinf(eps)) return {};  // delta <= 0: intervals never exclude

  // The k-th largest lower bound among surviving views. Every estimate
  // shares the same eps (all views observed the same phases), so lower
  // bounds order like the estimates.
  std::vector<double> lowers;
  for (size_t v = 0; v < active_.size(); ++v) {
    if (active_[v]) lowers.push_back(estimate_[v] - eps);
  }
  std::nth_element(lowers.begin(), lowers.begin() + (options_.keep_k - 1),
                   lowers.end(), std::greater<double>());
  double kth_lower = lowers[options_.keep_k - 1];

  // Prune views whose upper bound cannot reach the k-th lower bound. Strict
  // comparison: a view tied with the boundary stays in contention.
  std::vector<size_t> pruned;
  for (size_t v = 0; v < active_.size(); ++v) {
    if (active_[v] && estimate_[v] + eps < kth_lower) pruned.push_back(v);
  }
  return pruned;
}

std::vector<size_t> OnlinePruningState::PruneBySuccessiveHalving() {
  // Retire the worst-scoring half of the survivors, never dropping below
  // keep_k. Ties break on view index (stable, deterministic).
  std::vector<size_t> survivors;
  for (size_t v = 0; v < active_.size(); ++v) {
    if (active_[v]) survivors.push_back(v);
  }
  size_t target = std::max(options_.keep_k, (survivors.size() + 1) / 2);
  if (target >= survivors.size()) return {};

  std::sort(survivors.begin(), survivors.end(), [this](size_t a, size_t b) {
    if (estimate_[a] != estimate_[b]) return estimate_[a] < estimate_[b];
    return a > b;
  });
  std::vector<size_t> pruned(survivors.begin(),
                             survivors.begin() +
                                 static_cast<std::ptrdiff_t>(survivors.size() -
                                                             target));
  std::sort(pruned.begin(), pruned.end());
  return pruned;
}

}  // namespace seedb::core
