// View-space pruning (§3.3, "View Space Pruning").
//
// Three advisory pruners, each implementing one technique from the paper:
//   1. Variance-based: drop dimensions whose value distribution is nearly
//      single-valued (Gini–Simpson diversity below a threshold) — their
//      target view cannot deviate much from the comparison view.
//   2. Correlated attributes: evaluate one representative per cluster of
//      correlated dimensions (core/correlation.h).
//   3. Access frequency: drop dimensions and measures whose column access
//      frequency is below a threshold, once enough query history exists.
//
// Pruning is advisory (it can lose recall); every dropped view carries its
// reason so the frontend can show "views not examined and why".

#ifndef SEEDB_CORE_PRUNING_H_
#define SEEDB_CORE_PRUNING_H_

#include <string>
#include <vector>

#include "core/view.h"
#include "db/access_tracker.h"
#include "db/catalog.h"
#include "db/statistics.h"
#include "db/table.h"
#include "util/result.h"

namespace seedb::core {

struct PruningOptions {
  bool enable_variance = false;
  /// Dimensions with diversity < this are pruned (0.05 drops dimensions
  /// where one value covers ~97%+ of rows).
  double min_dimension_diversity = 0.05;
  /// Also prune measures whose numeric variance is exactly 0 (constant
  /// columns aggregate identically under any selection).
  bool prune_constant_measures = true;

  bool enable_correlation = false;
  /// Cramér's V at or above this merges two dimensions into one cluster.
  double correlation_threshold = 0.9;

  bool enable_access_frequency = false;
  /// Columns accessed by fewer than this fraction of past queries are
  /// pruned.
  double min_access_frequency = 0.1;
  /// History required before frequency pruning activates (avoids pruning
  /// everything on a cold start).
  uint64_t min_recorded_queries = 20;

  static PruningOptions None() { return PruningOptions{}; }
  static PruningOptions All() {
    PruningOptions o;
    o.enable_variance = true;
    o.enable_correlation = true;
    o.enable_access_frequency = true;
    return o;
  }
};

/// Why a view was pruned.
enum class PruneReason {
  kLowVariance,
  kCorrelatedDimension,
  kRarelyAccessed,
};

const char* PruneReasonToString(PruneReason reason);

struct PrunedView {
  ViewDescriptor view;
  PruneReason reason;
  /// For kCorrelatedDimension: the representative evaluated instead.
  std::string detail;
};

struct PruningReport {
  std::vector<ViewDescriptor> kept;
  std::vector<PrunedView> pruned;

  size_t total_considered() const { return kept.size() + pruned.size(); }
};

/// Applies the enabled pruners to `views`. `table`/`stats` supply metadata;
/// `tracker` may be null when access-frequency pruning is disabled. When
/// `catalog` is non-null, correlation pruning reads pairwise associations
/// through its cache instead of recomputing them per call.
Result<PruningReport> PruneViews(const std::vector<ViewDescriptor>& views,
                                 const db::Table& table,
                                 const db::TableStats& stats,
                                 const db::AccessTracker* tracker,
                                 const std::string& table_name,
                                 const PruningOptions& options,
                                 db::Catalog* catalog = nullptr);

}  // namespace seedb::core

#endif  // SEEDB_CORE_PRUNING_H_
