#include "core/distribution.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/string_util.h"

namespace seedb::core {

std::string Distribution::ToString() const {
  std::string out;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i) out += ", ";
    out += keys[i].ToString() + ": " + FormatDouble(probabilities[i], 4);
  }
  return out;
}

std::vector<double> NormalizeToProbabilities(const std::vector<double>& raw) {
  std::vector<double> p = raw;
  if (p.empty()) return p;
  // Signed aggregates (e.g. SUM(profit)) normalize by magnitude: a group
  // with a large loss carries as much probability mass as one with an
  // equally large gain. (Shifting by -min instead would zero out the most
  // negative group and amplify noise in every other bin whenever the total
  // is negative.)
  bool any_negative =
      std::any_of(p.begin(), p.end(), [](double v) { return v < 0.0; });
  if (any_negative) {
    for (double& v : p) v = std::abs(v);
  }
  double total = 0.0;
  for (double v : p) total += v;
  if (total <= 0.0 || !std::isfinite(total)) {
    double uniform = 1.0 / static_cast<double>(p.size());
    std::fill(p.begin(), p.end(), uniform);
    return p;
  }
  for (double& v : p) v /= total;
  return p;
}

namespace {

// Collects (key, value) pairs from a single-view result table.
Result<std::map<db::Value, double>> TableToMap(const db::Table& table,
                                               size_t value_col) {
  if (table.num_columns() < 2 || value_col >= table.num_columns()) {
    return Status::InvalidArgument("view result needs key + value columns");
  }
  std::map<db::Value, double> out;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    db::Value key = table.ValueAt(r, 0);
    db::Value val = table.ValueAt(r, value_col);
    double v = 0.0;
    if (!val.is_null()) {
      SEEDB_ASSIGN_OR_RETURN(v, val.ToDouble());
    }
    out[key] = v;
  }
  return out;
}

AlignedPair BuildAligned(const std::map<db::Value, double>& target,
                         const std::map<db::Value, double>& comparison) {
  // Union of keys, ascending (std::map order).
  std::vector<db::Value> keys;
  for (const auto& [k, _] : comparison) keys.push_back(k);
  for (const auto& [k, _] : target) {
    if (!comparison.count(k)) keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());

  AlignedPair pair;
  pair.target.keys = keys;
  pair.comparison.keys = keys;
  pair.target_raw.reserve(keys.size());
  pair.comparison_raw.reserve(keys.size());
  for (const auto& k : keys) {
    auto it = target.find(k);
    pair.target_raw.push_back(it == target.end() ? 0.0 : it->second);
    auto ic = comparison.find(k);
    pair.comparison_raw.push_back(ic == comparison.end() ? 0.0 : ic->second);
  }
  pair.target.probabilities = NormalizeToProbabilities(pair.target_raw);
  pair.comparison.probabilities =
      NormalizeToProbabilities(pair.comparison_raw);
  return pair;
}

}  // namespace

Result<AlignedPair> AlignFromTables(const db::Table& target,
                                    size_t target_value_col,
                                    const db::Table& comparison,
                                    size_t comparison_value_col) {
  SEEDB_ASSIGN_OR_RETURN(auto target_map, TableToMap(target, target_value_col));
  SEEDB_ASSIGN_OR_RETURN(auto comparison_map,
                         TableToMap(comparison, comparison_value_col));
  return BuildAligned(target_map, comparison_map);
}

Result<AlignedPair> AlignFromCombined(const db::Table& combined,
                                      const std::string& target_col,
                                      const std::string& comparison_col) {
  SEEDB_ASSIGN_OR_RETURN(size_t t_idx,
                         combined.schema().FindColumn(target_col));
  SEEDB_ASSIGN_OR_RETURN(size_t c_idx,
                         combined.schema().FindColumn(comparison_col));
  std::map<db::Value, double> target_map, comparison_map;
  for (size_t r = 0; r < combined.num_rows(); ++r) {
    db::Value key = combined.ValueAt(r, 0);
    db::Value tv = combined.ValueAt(r, t_idx);
    db::Value cv = combined.ValueAt(r, c_idx);
    if (!tv.is_null()) {
      SEEDB_ASSIGN_OR_RETURN(double t, tv.ToDouble());
      target_map[key] = t;
    }
    if (!cv.is_null()) {
      SEEDB_ASSIGN_OR_RETURN(double c, cv.ToDouble());
      comparison_map[key] = c;
    }
  }
  return BuildAligned(target_map, comparison_map);
}

}  // namespace seedb::core
