#include "core/correlation.h"

#include <numeric>

namespace seedb::core {
namespace {

/// Union-find over dimension indices.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Result<std::vector<DimensionCluster>> ClusterCorrelatedDimensions(
    const db::Table& table, const db::TableStats& stats,
    const std::vector<std::string>& dimensions, double threshold,
    db::Catalog* catalog, const std::string& table_name) {
  const size_t n = dimensions.size();
  DisjointSets sets(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double v;
      if (catalog != nullptr) {
        SEEDB_ASSIGN_OR_RETURN(
            v, catalog->GetCramersV(table_name, dimensions[i], dimensions[j]));
      } else {
        SEEDB_ASSIGN_OR_RETURN(
            v, db::CramersV(table, dimensions[i], dimensions[j]));
      }
      if (v >= threshold) sets.Union(i, j);
    }
  }

  // Gather members per root, preserving input (schema) order.
  std::vector<std::vector<size_t>> by_root(n);
  for (size_t i = 0; i < n; ++i) by_root[sets.Find(i)].push_back(i);

  std::vector<DimensionCluster> clusters;
  for (size_t root = 0; root < n; ++root) {
    if (by_root[root].empty()) continue;
    DimensionCluster cluster;
    double best_diversity = -1.0;
    for (size_t idx : by_root[root]) {
      const std::string& name = dimensions[idx];
      cluster.members.push_back(name);
      double diversity = 0.0;
      if (auto cs = stats.Find(name); cs.ok()) {
        diversity = (*cs)->diversity;
      }
      if (diversity > best_diversity) {
        best_diversity = diversity;
        cluster.representative = name;
      }
    }
    clusters.push_back(std::move(cluster));
  }
  return clusters;
}

}  // namespace seedb::core
