// The Query Generator module (§3.1): enumerate candidate views, prune them
// using metadata, and emit the target/comparison view queries for the
// survivors.
//
// "The purpose of the Query Generator is two-fold: first, it uses metadata
// to prune the space of candidate views to only retain the most promising
// ones; and second, it generates target and comparison views for each view
// that has not been pruned."

#ifndef SEEDB_CORE_QUERY_GENERATOR_H_
#define SEEDB_CORE_QUERY_GENERATOR_H_

#include <string>
#include <vector>

#include "core/pruning.h"
#include "core/view.h"
#include "core/view_space.h"
#include "db/engine.h"
#include "util/result.h"

namespace seedb::core {

/// One un-optimized view query pair, as SQL (what a wrapper deployment would
/// send to the DBMS before the Optimizer combines queries).
struct ViewQueryText {
  ViewDescriptor view;
  std::string target_sql;
  std::string comparison_sql;
};

/// Output of the Query Generator stage.
struct GeneratedViews {
  /// Kept + pruned views with reasons.
  PruningReport pruning;
  /// View queries for every kept view, in kept order.
  std::vector<ViewQueryText> queries;
};

/// Runs enumeration + pruning for `table` under analyst selection
/// `selection`, consulting the engine's catalog statistics and access
/// tracker.
Result<GeneratedViews> GenerateViews(db::Engine* engine,
                                     const std::string& table,
                                     const db::PredicatePtr& selection,
                                     const ViewSpaceOptions& view_space,
                                     const PruningOptions& pruning);

}  // namespace seedb::core

#endif  // SEEDB_CORE_QUERY_GENERATOR_H_
