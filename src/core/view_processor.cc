#include "core/view_processor.h"

namespace seedb::core {

Status ViewProcessor::Consume(const PlannedQuery& planned,
                              std::vector<db::Table> result_sets) {
  return Consume(planned, std::move(result_sets), ViewFilter());
}

Status ViewProcessor::Consume(const PlannedQuery& planned,
                              std::vector<db::Table> result_sets,
                              const ViewFilter& include) {
  if (result_sets.size() != planned.query.grouping_sets.size()) {
    return Status::Internal("result set count does not match grouping sets");
  }
  // Take ownership so slot pointers stay valid until Finish().
  std::vector<const db::Table*> tables;
  tables.reserve(result_sets.size());
  for (auto& t : result_sets) {
    owned_tables_.push_back(std::make_unique<db::Table>(std::move(t)));
    tables.push_back(owned_tables_.back().get());
  }

  for (const ViewSlot& slot : planned.slots) {
    if (include && !include(slot.view)) continue;
    if (slot.result_index >= tables.size()) {
      return Status::Internal("slot result index out of range");
    }
    const db::Table* table = tables[slot.result_index];
    auto [it, inserted] = pending_.emplace(slot.view, PendingView{});
    PendingView& pv = it->second;
    if (inserted) {
      pv.view = slot.view;
      order_.push_back(slot.view);
    }

    if (planned.half == QueryHalf::kCombined) {
      pv.combined = table;
      pv.combined_target_col = slot.target_column;
      pv.combined_comparison_col = slot.comparison_column;
      continue;
    }
    if (planned.half == QueryHalf::kTargetOnly) {
      SEEDB_ASSIGN_OR_RETURN(size_t col,
                             table->schema().FindColumn(slot.target_column));
      pv.target = {table, col};
    } else {
      SEEDB_ASSIGN_OR_RETURN(
          size_t col, table->schema().FindColumn(slot.comparison_column));
      pv.comparison = {table, col};
    }
  }
  return Status::OK();
}

Result<std::vector<ViewResult>> ViewProcessor::Finish(bool allow_partial) {
  std::vector<ViewResult> results;
  results.reserve(order_.size());
  for (const ViewDescriptor& view : order_) {
    const PendingView& pv = pending_.at(view);
    ViewResult vr;
    vr.view = view;
    if (pv.combined != nullptr) {
      Result<AlignedPair> aligned =
          AlignFromCombined(*pv.combined, pv.combined_target_col,
                            pv.combined_comparison_col);
      if (!aligned.ok()) {
        if (allow_partial) continue;
        return aligned.status();
      }
      vr.distributions = std::move(*aligned);
    } else {
      if (pv.target.table == nullptr || pv.comparison.table == nullptr) {
        if (allow_partial) continue;
        return Status::Internal("view '" + view.Id() +
                                "' is missing a target or comparison half");
      }
      Result<AlignedPair> aligned =
          AlignFromTables(*pv.target.table, pv.target.value_col,
                          *pv.comparison.table, pv.comparison.value_col);
      if (!aligned.ok()) {
        if (allow_partial) continue;
        return aligned.status();
      }
      vr.distributions = std::move(*aligned);
    }
    Result<double> utility =
        Distance(vr.distributions.target.probabilities,
                 vr.distributions.comparison.probabilities, metric_);
    if (!utility.ok()) {
      if (allow_partial) continue;
      return utility.status();
    }
    vr.utility = *utility;
    results.push_back(std::move(vr));
  }
  return results;
}

}  // namespace seedb::core
