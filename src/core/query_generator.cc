#include "core/query_generator.h"

#include <algorithm>
#include <set>

namespace seedb::core {

Result<GeneratedViews> GenerateViews(db::Engine* engine,
                                     const std::string& table,
                                     const db::PredicatePtr& selection,
                                     const ViewSpaceOptions& view_space,
                                     const PruningOptions& pruning) {
  SEEDB_ASSIGN_OR_RETURN(const db::Table* data,
                         engine->catalog()->GetTable(table));
  if (selection) {
    SEEDB_RETURN_IF_ERROR(selection->Validate(data->schema()));
  }
  SEEDB_ASSIGN_OR_RETURN(const db::TableStats* stats,
                         engine->catalog()->GetStats(table));

  std::vector<ViewDescriptor> views = EnumerateViews(data->schema(),
                                                     view_space);
  if (view_space.exclude_selection_dimensions && selection) {
    std::vector<std::string> filtered_cols;
    selection->CollectColumns(&filtered_cols);
    std::erase_if(views, [&](const ViewDescriptor& v) {
      return std::find(filtered_cols.begin(), filtered_cols.end(),
                       v.dimension) != filtered_cols.end();
    });
    // Attribute hierarchies: a dimension (near-)determined by a selection
    // dimension deviates by construction under the selection, so it is
    // excluded too (e.g. sub_category under a category filter).
    if (view_space.selection_correlation_threshold <= 1.0) {
      std::set<std::string> sel_dims;
      for (const auto& col : filtered_cols) {
        if (auto idx = data->schema().FindColumn(col); idx.ok()) {
          if (data->schema().column(*idx).role == db::ColumnRole::kDimension) {
            sel_dims.insert(col);
          }
        }
      }
      std::set<std::string> dims_in_views;
      for (const auto& v : views) dims_in_views.insert(v.dimension);
      std::set<std::string> hierarchical;
      for (const auto& dim : dims_in_views) {
        for (const auto& sel : sel_dims) {
          SEEDB_ASSIGN_OR_RETURN(
              double v, engine->catalog()->GetCramersV(table, dim, sel));
          if (v >= view_space.selection_correlation_threshold) {
            hierarchical.insert(dim);
            break;
          }
        }
      }
      std::erase_if(views, [&](const ViewDescriptor& v) {
        return hierarchical.count(v.dimension) > 0;
      });
    }
  }
  if (views.empty()) {
    return Status::InvalidArgument(
        "table '" + table +
        "' has no candidate views (needs dimension and measure columns "
        "outside the selection predicate)");
  }

  GeneratedViews out;
  SEEDB_ASSIGN_OR_RETURN(
      out.pruning, PruneViews(views, *data, *stats, engine->access_tracker(),
                              table, pruning, engine->catalog()));
  out.queries.reserve(out.pruning.kept.size());
  for (const auto& view : out.pruning.kept) {
    ViewQueryText q;
    q.view = view;
    q.target_sql = TargetViewQuery(view, table, selection).ToSql();
    q.comparison_sql = ComparisonViewQuery(view, table).ToSql();
    out.queries.push_back(std::move(q));
  }
  return out;
}

}  // namespace seedb::core
