// The View Processor module (§3.1): turns optimized-query results back into
// per-view distributions and utilities.
//
// "Results of the optimized queries are processed by the View Processor in a
// streaming fashion to produce results for individual views. Individual view
// results are then normalized and the utility of each view is computed."
//
// The same machinery scores *partial* results: the phased executor feeds each
// phase's un-finalized running aggregates through a throwaway ViewProcessor
// to get mid-flight utility estimates for online pruning, with a view filter
// so retired views drop out of consumption.

#ifndef SEEDB_CORE_VIEW_PROCESSOR_H_
#define SEEDB_CORE_VIEW_PROCESSOR_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "core/distribution.h"
#include "core/metrics.h"
#include "core/optimizer.h"
#include "core/view.h"
#include "db/table.h"
#include "util/result.h"

namespace seedb::core {

/// \brief A fully processed view: aligned distributions plus utility.
struct ViewResult {
  ViewDescriptor view;
  AlignedPair distributions;
  double utility = 0.0;
};

/// \brief Accumulates executed planned queries and assembles ViewResults.
///
/// Feed each PlannedQuery and its engine result sets with Consume();
/// Finish() pairs up target/comparison halves (a combined query provides
/// both; split plans provide them in two queries), normalizes, and scores
/// with `metric`. Consume() is not thread-safe; callers running the plan in
/// parallel serialize consumption (the executor does).
class ViewProcessor {
 public:
  /// Decides which of a planned query's view slots to ingest; views it
  /// rejects are skipped entirely (the phased executor passes the online
  /// pruner's survivor set).
  using ViewFilter = std::function<bool(const ViewDescriptor&)>;

  explicit ViewProcessor(DistanceMetric metric) : metric_(metric) {}

  /// Ingests the result sets of one executed planned query (takes
  /// ownership of the tables).
  Status Consume(const PlannedQuery& planned,
                 std::vector<db::Table> result_sets);

  /// Same, but only slots whose view passes `include` are ingested. The
  /// tables are retained either way (a result set can carry both included
  /// and excluded views).
  Status Consume(const PlannedQuery& planned,
                 std::vector<db::Table> result_sets,
                 const ViewFilter& include);

  /// Completes processing; fails if any view is missing a half. With
  /// `allow_partial`, views missing a half are silently dropped instead —
  /// what a cancelled execution wants (one of the view's queries never ran).
  Result<std::vector<ViewResult>> Finish(bool allow_partial = false);

 private:
  struct Half {
    const db::Table* table = nullptr;
    size_t value_col = 0;
  };
  struct PendingView {
    ViewDescriptor view;
    Half target;
    Half comparison;
    /// Set when a combined query produced both halves in one table.
    const db::Table* combined = nullptr;
    std::string combined_target_col;
    std::string combined_comparison_col;
  };

  DistanceMetric metric_;
  /// Owned copies of every consumed result set (tables are moved in).
  std::vector<std::unique_ptr<db::Table>> owned_tables_;
  std::unordered_map<ViewDescriptor, PendingView, ViewDescriptorHash> pending_;
  /// First-seen order for deterministic output.
  std::vector<ViewDescriptor> order_;
};

}  // namespace seedb::core

#endif  // SEEDB_CORE_VIEW_PROCESSOR_H_
