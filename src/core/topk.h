// Top-k selection of views by utility (Problem 2.1).

#ifndef SEEDB_CORE_TOPK_H_
#define SEEDB_CORE_TOPK_H_

#include <vector>

#include "core/view_processor.h"

namespace seedb::core {

/// The k highest-utility views, utility descending; ties break on the view
/// id so results are deterministic. k = 0 returns everything sorted.
std::vector<ViewResult> SelectTopK(std::vector<ViewResult> views, size_t k);

/// The k lowest-utility views, utility ascending — the demo's "bad views"
/// display (§4 Scenario 1 shows low-utility views for contrast).
std::vector<ViewResult> SelectBottomK(std::vector<ViewResult> views, size_t k);

}  // namespace seedb::core

#endif  // SEEDB_CORE_TOPK_H_
