// Plan executor: runs an ExecutionPlan against the engine, optionally with
// parallel query execution (§3.3, "Parallel Query Execution").
//
// "We observe that as the number of queries executed in parallel increases,
// the total latency decreases at the cost of increased per query execution
// time." The executor reproduces that knob: planned queries are distributed
// over a thread pool; per-query latencies are recorded so benches can report
// both sides of the trade-off.
//
// Three strategies are offered. kPerQuery is the paper's inter-query
// parallelism: each planned query is an independent pass over the table, and
// the pool runs passes concurrently. kSharedScan is the logical endpoint of
// §3.3's sharing argument: the whole plan is handed to db/shared_scan.h and
// answered in ONE morsel-driven pass, with intra-scan parallelism — it gets
// faster with cores, not with query count. kPhasedSharedScan runs that same
// fused pass as N sequential table slices and, at each phase boundary,
// re-estimates every surviving view's utility from its running (un-finalized)
// aggregates and lets an online pruner (core/online_pruning.h) retire views
// that provably — or probably, depending on the strategy — cannot make the
// top k, so the remaining phases scan for fewer queries.

#ifndef SEEDB_CORE_EXECUTOR_H_
#define SEEDB_CORE_EXECUTOR_H_

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/metrics.h"
#include "core/online_pruning.h"
#include "core/optimizer.h"
#include "core/view_processor.h"
#include "db/engine.h"
#include "util/result.h"

namespace seedb::core {

/// How the executor maps an ExecutionPlan onto engine work.
enum class ExecutionStrategy {
  /// One engine query per planned query; `parallelism` queries in flight.
  kPerQuery,
  /// The whole plan fused into one morsel-driven table pass;
  /// `parallelism` worker threads inside the scan.
  kSharedScan,
  /// The fused pass split into `online_pruning.num_phases` sequential row
  /// slices with confidence-interval / MAB view pruning at each boundary.
  kPhasedSharedScan,
};

const char* ExecutionStrategyToString(ExecutionStrategy strategy);

struct ExecutorOptions {
  /// kPerQuery: queries executed concurrently (1 = serial).
  /// kSharedScan / kPhasedSharedScan: morsel worker threads (0 = hardware
  /// concurrency).
  size_t parallelism = 1;
  ExecutionStrategy strategy = ExecutionStrategy::kPerQuery;
  /// Rows per morsel for the fused strategies (0 = adaptive, re-derived at
  /// every phase start from the phase's rows and the surviving query count —
  /// db::AdaptiveMorselRows).
  size_t morsel_rows = db::SharedScanOptions{}.morsel_rows;
  /// Explicit-SIMD kernel tier inside the fused strategies' vectorized
  /// morsels (db/vec/simd/). Kill switch — results are bit-identical either
  /// way; the tier also self-disables on builds/CPUs without the ISA.
  bool enable_simd = true;
  /// Phase count, mid-flight pruner and early-stop policy for
  /// kPhasedSharedScan (ignored by the other strategies). keep_k must be set
  /// for pruning to engage; the SeeDB facade wires it to the top-k request.
  OnlinePruningOptions online_pruning;
  /// Cooperative cancellation token. Under the fused strategies it is
  /// observed at morsel boundaries inside the scan; under kPerQuery between
  /// queries. On cancellation the executor returns the views completed so
  /// far (fused strategies: every survivor, estimated over the rows seen)
  /// and sets ExecutionReport::cancelled. nullptr = not cancellable.
  const std::atomic<bool>* cancel = nullptr;
  /// Record obs trace spans for this run's scan phases and worker merge
  /// steps even when the recorder is not tracing all sessions.
  bool trace = false;
  /// Cap on the plan's aggregation-state footprint in bytes; 0 = unlimited.
  /// Fused strategies meter the scan's merged agg state at every phase
  /// boundary (one boundary for kSharedScan); kPerQuery meters the
  /// cumulative groups x aggregates x sizeof(AggState) of the results
  /// retained so far and stops issuing queries on a breach. Either way the
  /// run ends gracefully with ExecutionReport::budget_exceeded set and
  /// partial results over the work already done — the same contract as
  /// SeeDBOptions::memory_budget_bytes under the phased session.
  size_t memory_budget_bytes = 0;
};

/// Latency breakdown of one plan execution. Which fields are populated
/// depends on the strategy: per-query wall times only exist when queries
/// actually run independently; a fused pass has per-*phase* wall times
/// instead (one phase for kSharedScan). Nothing is ever attributed evenly
/// across queries that shared a pass.
struct ExecutionReport {
  /// Wall time to run the whole plan.
  double total_seconds = 0.0;
  /// Per planned-query wall time, in plan order. Populated under kPerQuery
  /// only; empty under the fused strategies.
  std::vector<double> query_seconds;
  /// Per-phase wall time of the fused pass, including each boundary's
  /// estimate/prune bookkeeping. One entry under kSharedScan, one per phase
  /// under kPhasedSharedScan, empty under kPerQuery.
  std::vector<double> phase_seconds;
  /// Phases the fused pass ran (0 under kPerQuery). Smaller than the
  /// requested phase count when the run early-stopped or was cancelled.
  size_t phases_executed = 0;
  /// Views retired mid-flight by the online pruner (= online_pruned.size()).
  size_t views_pruned_online = 0;
  /// The retired views themselves, each with the partial utility estimate it
  /// carried at retirement — surfaced to RecommendationSet for the
  /// frontend's "views not examined" display.
  std::vector<OnlinePrunedView> online_pruned;
  /// Planned queries the scan stopped computing because every view riding
  /// on them had been pruned.
  size_t queries_deactivated = 0;
  /// The run stopped scanning before the last requested phase because the
  /// top-k was CI-stable (OnlinePruningOptions::early_stop_stable_phases);
  /// utilities are estimates over the rows seen.
  bool early_stopped = false;
  /// The run was cut short by ExecutorOptions::cancel; results are partial.
  bool cancelled = false;
  /// Engine work attributable to THIS run, so concurrent runs on one
  /// engine do not bleed into each other's profiles. The fused strategies
  /// fill all three exactly (table_scans = 1 per batch); kPerQuery fills
  /// queries_executed only (table_scans stays 0 — the facade falls back to
  /// engine-wide counter deltas there).
  size_t queries_executed = 0;
  size_t table_scans = 0;
  uint64_t rows_scanned = 0;
  /// Morsels of the fused pass whose inner loop ran the vectorized kernels
  /// (db/vec/) for at least one grouping set; 0 under kPerQuery or when
  /// every set fell back to the hash path.
  uint64_t vectorized_morsels = 0;
  /// Of those, morsels that additionally ran the explicit-SIMD kernel tier
  /// (db/vec/simd/); 0 when the tier is off or unavailable.
  uint64_t simd_morsels = 0;
  /// (query, grouping set) pairs this run adopted from / missed in the
  /// engine's cross-session result cache (db/scan_cache.h). Both 0 under
  /// kPerQuery or when the engine cache is disabled.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Aggregation-state footprint of the run in bytes: the fused scan's
  /// merged state, or the cumulative groups x aggregates x sizeof(AggState)
  /// of per-query results — what memory_budget_bytes is metered against.
  size_t agg_state_bytes = 0;
  /// The run stopped before completing every planned unit of work because
  /// the aggregation-state footprint crossed
  /// ExecutorOptions::memory_budget_bytes; results cover the work finished
  /// before the breach.
  bool budget_exceeded = false;

  double MeanQuerySeconds() const;
  double MaxQuerySeconds() const;
  double MeanPhaseSeconds() const;
};

/// A running utility estimate for one surviving view mid-scan.
struct ViewEstimate {
  ViewDescriptor view;
  /// Utility computed over the rows the scan has consumed so far.
  double utility = 0.0;
};

/// The provisional-ranking order: utility descending, ties on view id so
/// rankings are deterministic. The early-stop policy and the streaming
/// session's top-k display both rank with this — they must agree on what
/// "the current top-k" is.
bool RanksBefore(const ViewEstimate& a, const ViewEstimate& b);

/// Observable state of one phase of a PhasedPlanExecution, produced by
/// Step() right after the phase's boundary bookkeeping ran.
struct PhaseSnapshot {
  /// 1-based index of the phase just completed.
  size_t phase = 0;
  size_t total_phases = 0;
  /// Wall time of the phase including boundary estimate/prune bookkeeping.
  double phase_seconds = 0.0;
  /// Rows of the table consumed so far (estimated under cancellation).
  size_t rows_consumed = 0;
  size_t views_active = 0;
  /// Views retired by the online pruner so far (cumulative).
  size_t views_pruned = 0;
  /// Hoeffding half-width eps(m) after this many boundaries under the run's
  /// delta / utility_range; infinite when delta <= 0.
  double ci_half_width = 0.0;
  /// Surviving views' running utilities, when estimate collection was
  /// requested (or needed by the pruner / early-stop policy) and the
  /// boundary estimates were computable.
  bool has_estimates = false;
  std::vector<ViewEstimate> estimates;
  /// This boundary triggered early stop (the run is now done).
  bool early_stopped = false;
  /// The cancel token cut this phase short (the run is now done).
  bool cancelled = false;
};

/// \brief A kPhasedSharedScan plan execution advanced one phase at a time —
/// the machinery behind both blocking ExecutePlan() and the streaming
/// RecommendationSession (core/session.h).
///
/// Usage:
///   SEEDB_ASSIGN_OR_RETURN(auto run, PhasedPlanExecution::Begin(...));
///   while (!run.done()) { auto snap = run.Step(true); ... }
///   auto results = run.Finish(&report);
///
/// Not thread-safe, with one exception: the ExecutorOptions::cancel token
/// may be flipped from another thread while Step() runs; the in-flight
/// phase then returns within one morsel granule.
class PhasedPlanExecution {
 public:
  static Result<PhasedPlanExecution> Begin(db::Engine* engine,
                                           const ExecutionPlan& plan,
                                           DistanceMetric metric,
                                           const ExecutorOptions& options);

  size_t total_phases() const { return total_phases_; }
  size_t phases_run() const { return phase_seconds_.size(); }
  /// True when every phase ran, early stop fired, or the run was cancelled;
  /// Step() must not be called once done.
  bool done() const;
  bool early_stopped() const { return early_stopped_; }
  bool cancelled() const { return cancelled_; }
  size_t rows_consumed() const;
  size_t num_rows() const;

  /// Runs the next phase and its boundary bookkeeping: prune (when a pruner
  /// is engaged and phases remain), collect estimates (when requested or
  /// needed), and evaluate the early-stop policy. `collect_estimates` asks
  /// for the surviving views' running utilities in the snapshot even when
  /// no pruner needs them — the streaming session's provisional top-k.
  Result<PhaseSnapshot> Step(bool collect_estimates);

  /// Stops the run here: remaining phases are skipped and Finish()
  /// materializes results from the rows seen so far.
  void StopEarly() { early_stopped_ = true; }

  /// Re-opens a cancelled run instead of discarding it: the cut-short
  /// phase's missed morsels are scanned now (exactly — every row of that
  /// phase ends up covered once), after which Step() continues from the
  /// next phase. The caller must reset the cancel token before calling; a
  /// token still reading true cancels the resume again (cancelled() stays
  /// true, and another Resume() may follow). Errors when the run was not
  /// cancelled or already finished.
  Status Resume();

  /// Merged aggregation-state footprint of the underlying scan so far, in
  /// bytes — what a per-session memory budget meters.
  size_t agg_state_bytes() const;

  /// Terminal: finalizes the scan (recording engine stats), consumes every
  /// surviving view and scores it with the run's metric. After early stop
  /// or cancellation the utilities are estimates over the rows consumed.
  /// `report` (optional) receives the full latency/pruning breakdown.
  Result<std::vector<ViewResult>> Finish(ExecutionReport* report = nullptr);

  /// Views retired so far, with their partial utility estimates.
  const std::vector<OnlinePrunedView>& online_pruned() const {
    return online_pruned_;
  }

 private:
  PhasedPlanExecution(const ExecutionPlan* plan, DistanceMetric metric,
                      ExecutorOptions options, db::SharedScanSession session);

  /// Result-cache warm start: looks up each plan view's utility prior under
  /// `table_version` and, when EVERY view has one (a partial prior set would
  /// give cold views tight intervals around 0 and mis-prune them), rebuilds
  /// the pruner with those estimates and the smallest prior weight found.
  /// Always remembers the cache so Finish() can publish this run's final
  /// utilities back. Called by Begin() when the engine cache is enabled.
  void SeedUtilityPriors(db::PartialAggCache* cache, uint64_t table_version);

  Result<std::vector<ViewEstimate>> EstimateSurvivors() const;
  bool EvaluateEarlyStop(const std::vector<ViewEstimate>& estimates,
                         double eps);

  const ExecutionPlan* plan_;
  DistanceMetric metric_;
  ExecutorOptions options_;
  db::SharedScanSession session_;

  /// Dense view index across the plan plus the wiring from each view to the
  /// planned queries carrying one of its halves.
  std::vector<ViewDescriptor> views_;
  std::unordered_map<ViewDescriptor, size_t, ViewDescriptorHash> view_index_;
  std::vector<std::vector<size_t>> queries_of_view_;
  std::vector<size_t> live_slots_;

  OnlinePruningState pruner_;
  size_t total_phases_ = 1;
  std::vector<double> phase_seconds_;
  std::vector<OnlinePrunedView> online_pruned_;
  size_t queries_deactivated_ = 0;
  bool early_stopped_ = false;
  bool cancelled_ = false;
  bool finished_ = false;

  /// Boundaries this run has observed — drives the displayed Hoeffding
  /// half-width (the pruner keeps its own count, which only advances when
  /// pruning is engaged).
  size_t boundaries_observed_ = 0;
  /// Early-stop bookkeeping: the previous boundary's ordered top-k and how
  /// many consecutive boundaries produced it.
  std::vector<std::string> last_top_ids_;
  size_t stable_streak_ = 0;

  /// Utility-prior side channel of the engine's result cache; null while the
  /// cache is disabled. Finish() publishes full un-cancelled runs' final
  /// utilities here under prior_key_prefix_ + view id.
  db::PartialAggCache* prior_cache_ = nullptr;
  std::string prior_key_prefix_;
};

/// Resolves OnlinePruningOptions::utility_range <= 0 ("auto-calibrate"):
/// the largest MetricUtilityRange(metric, group_count) across `plan`'s
/// views, with each view's group count taken from catalog statistics of the
/// plan's table (dimension distinct count, +1 when the column holds nulls).
/// Exposed for tests and benches; PhasedPlanExecution::Begin applies it.
Result<double> AutoUtilityRange(db::Engine* engine, const ExecutionPlan& plan,
                                DistanceMetric metric);

/// Executes `plan` against `engine` and scores every view with `metric`.
/// On success `report` (optional) carries the latency breakdown. Under
/// kPhasedSharedScan with a pruner configured, views retired mid-flight are
/// absent from the result (that is the point — their queries stop running);
/// every other configuration returns one ViewResult per plan view, except
/// that a cancelled run returns only the views completed so far.
Result<std::vector<ViewResult>> ExecutePlan(db::Engine* engine,
                                            const ExecutionPlan& plan,
                                            DistanceMetric metric,
                                            const ExecutorOptions& options,
                                            ExecutionReport* report = nullptr);

}  // namespace seedb::core

#endif  // SEEDB_CORE_EXECUTOR_H_
