// Plan executor: runs an ExecutionPlan against the engine, optionally with
// parallel query execution (§3.3, "Parallel Query Execution").
//
// "We observe that as the number of queries executed in parallel increases,
// the total latency decreases at the cost of increased per query execution
// time." The executor reproduces that knob: planned queries are distributed
// over a thread pool; per-query latencies are recorded so benches can report
// both sides of the trade-off.
//
// Three strategies are offered. kPerQuery is the paper's inter-query
// parallelism: each planned query is an independent pass over the table, and
// the pool runs passes concurrently. kSharedScan is the logical endpoint of
// §3.3's sharing argument: the whole plan is handed to db/shared_scan.h and
// answered in ONE morsel-driven pass, with intra-scan parallelism — it gets
// faster with cores, not with query count. kPhasedSharedScan runs that same
// fused pass as N sequential table slices and, at each phase boundary,
// re-estimates every surviving view's utility from its running (un-finalized)
// aggregates and lets an online pruner (core/online_pruning.h) retire views
// that provably — or probably, depending on the strategy — cannot make the
// top k, so the remaining phases scan for fewer queries.

#ifndef SEEDB_CORE_EXECUTOR_H_
#define SEEDB_CORE_EXECUTOR_H_

#include <vector>

#include "core/metrics.h"
#include "core/online_pruning.h"
#include "core/optimizer.h"
#include "core/view_processor.h"
#include "db/engine.h"
#include "util/result.h"

namespace seedb::core {

/// How the executor maps an ExecutionPlan onto engine work.
enum class ExecutionStrategy {
  /// One engine query per planned query; `parallelism` queries in flight.
  kPerQuery,
  /// The whole plan fused into one morsel-driven table pass;
  /// `parallelism` worker threads inside the scan.
  kSharedScan,
  /// The fused pass split into `online_pruning.num_phases` sequential row
  /// slices with confidence-interval / MAB view pruning at each boundary.
  kPhasedSharedScan,
};

const char* ExecutionStrategyToString(ExecutionStrategy strategy);

struct ExecutorOptions {
  /// kPerQuery: queries executed concurrently (1 = serial).
  /// kSharedScan / kPhasedSharedScan: morsel worker threads (0 = hardware
  /// concurrency).
  size_t parallelism = 1;
  ExecutionStrategy strategy = ExecutionStrategy::kPerQuery;
  /// Rows per morsel for the fused strategies (0 = adaptive, derived from
  /// row and thread count — db::AdaptiveMorselRows).
  size_t morsel_rows = db::SharedScanOptions{}.morsel_rows;
  /// Phase count and mid-flight pruner for kPhasedSharedScan (ignored by
  /// the other strategies). keep_k must be set for pruning to engage; the
  /// SeeDB facade wires it to the top-k request.
  OnlinePruningOptions online_pruning;
};

/// Latency breakdown of one plan execution. Which fields are populated
/// depends on the strategy: per-query wall times only exist when queries
/// actually run independently; a fused pass has per-*phase* wall times
/// instead (one phase for kSharedScan). Nothing is ever attributed evenly
/// across queries that shared a pass.
struct ExecutionReport {
  /// Wall time to run the whole plan.
  double total_seconds = 0.0;
  /// Per planned-query wall time, in plan order. Populated under kPerQuery
  /// only; empty under the fused strategies.
  std::vector<double> query_seconds;
  /// Per-phase wall time of the fused pass, including each boundary's
  /// estimate/prune bookkeeping. One entry under kSharedScan, one per phase
  /// under kPhasedSharedScan, empty under kPerQuery.
  std::vector<double> phase_seconds;
  /// Phases the fused pass ran (0 under kPerQuery).
  size_t phases_executed = 0;
  /// Views retired mid-flight by the online pruner.
  size_t views_pruned_online = 0;
  /// Planned queries the scan stopped computing because every view riding
  /// on them had been pruned.
  size_t queries_deactivated = 0;

  double MeanQuerySeconds() const;
  double MaxQuerySeconds() const;
  double MeanPhaseSeconds() const;
};

/// Executes `plan` against `engine` and scores every view with `metric`.
/// On success `report` (optional) carries the latency breakdown. Under
/// kPhasedSharedScan with a pruner configured, views retired mid-flight are
/// absent from the result (that is the point — their queries stop running);
/// every other configuration returns one ViewResult per plan view.
Result<std::vector<ViewResult>> ExecutePlan(db::Engine* engine,
                                            const ExecutionPlan& plan,
                                            DistanceMetric metric,
                                            const ExecutorOptions& options,
                                            ExecutionReport* report = nullptr);

}  // namespace seedb::core

#endif  // SEEDB_CORE_EXECUTOR_H_
