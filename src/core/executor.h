// Plan executor: runs an ExecutionPlan against the engine, optionally with
// parallel query execution (§3.3, "Parallel Query Execution").
//
// "We observe that as the number of queries executed in parallel increases,
// the total latency decreases at the cost of increased per query execution
// time." The executor reproduces that knob: planned queries are distributed
// over a thread pool; per-query latencies are recorded so benches can report
// both sides of the trade-off.

#ifndef SEEDB_CORE_EXECUTOR_H_
#define SEEDB_CORE_EXECUTOR_H_

#include <vector>

#include "core/metrics.h"
#include "core/optimizer.h"
#include "core/view_processor.h"
#include "db/engine.h"
#include "util/result.h"

namespace seedb::core {

struct ExecutorOptions {
  /// Queries executed concurrently; 1 = serial.
  size_t parallelism = 1;
};

struct ExecutionReport {
  /// Wall time to run the whole plan.
  double total_seconds = 0.0;
  /// Per planned-query wall time, in plan order.
  std::vector<double> query_seconds;

  double MeanQuerySeconds() const;
  double MaxQuerySeconds() const;
};

/// Executes `plan` against `engine` and scores every view with `metric`.
/// On success `report` (optional) carries the latency breakdown.
Result<std::vector<ViewResult>> ExecutePlan(db::Engine* engine,
                                            const ExecutionPlan& plan,
                                            DistanceMetric metric,
                                            const ExecutorOptions& options,
                                            ExecutionReport* report = nullptr);

}  // namespace seedb::core

#endif  // SEEDB_CORE_EXECUTOR_H_
