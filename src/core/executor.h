// Plan executor: runs an ExecutionPlan against the engine, optionally with
// parallel query execution (§3.3, "Parallel Query Execution").
//
// "We observe that as the number of queries executed in parallel increases,
// the total latency decreases at the cost of increased per query execution
// time." The executor reproduces that knob: planned queries are distributed
// over a thread pool; per-query latencies are recorded so benches can report
// both sides of the trade-off.
//
// Two strategies are offered. kPerQuery is the paper's inter-query
// parallelism: each planned query is an independent pass over the table, and
// the pool runs passes concurrently. kSharedScan is the logical endpoint of
// §3.3's sharing argument: the whole plan is handed to db/shared_scan.h and
// answered in ONE morsel-driven pass, with intra-scan parallelism — it gets
// faster with cores, not with query count.

#ifndef SEEDB_CORE_EXECUTOR_H_
#define SEEDB_CORE_EXECUTOR_H_

#include <vector>

#include "core/metrics.h"
#include "core/optimizer.h"
#include "core/view_processor.h"
#include "db/engine.h"
#include "util/result.h"

namespace seedb::core {

/// How the executor maps an ExecutionPlan onto engine work.
enum class ExecutionStrategy {
  /// One engine query per planned query; `parallelism` queries in flight.
  kPerQuery,
  /// The whole plan fused into one morsel-driven table pass;
  /// `parallelism` worker threads inside the scan.
  kSharedScan,
};

const char* ExecutionStrategyToString(ExecutionStrategy strategy);

struct ExecutorOptions {
  /// kPerQuery: queries executed concurrently (1 = serial).
  /// kSharedScan: morsel worker threads (0 = hardware concurrency).
  size_t parallelism = 1;
  ExecutionStrategy strategy = ExecutionStrategy::kPerQuery;
  /// Rows per morsel for kSharedScan.
  size_t morsel_rows = db::SharedScanOptions{}.morsel_rows;
};

struct ExecutionReport {
  /// Wall time to run the whole plan.
  double total_seconds = 0.0;
  /// Per planned-query wall time, in plan order. Under kSharedScan the pass
  /// is fused, so the fused wall time is attributed evenly across queries.
  std::vector<double> query_seconds;

  double MeanQuerySeconds() const;
  double MaxQuerySeconds() const;
};

/// Executes `plan` against `engine` and scores every view with `metric`.
/// On success `report` (optional) carries the latency breakdown.
Result<std::vector<ViewResult>> ExecutePlan(db::Engine* engine,
                                            const ExecutionPlan& plan,
                                            DistanceMetric metric,
                                            const ExecutorOptions& options,
                                            ExecutionReport* report = nullptr);

}  // namespace seedb::core

#endif  // SEEDB_CORE_EXECUTOR_H_
