#include "core/session.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/query_generator.h"
#include "core/topk.h"
#include "db/sampler.h"
#include "db/sql/parser.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace seedb::core {
namespace {

Recommendation MakeRecommendation(size_t rank, ViewResult result,
                                  const std::string& table,
                                  const db::PredicatePtr& selection) {
  Recommendation rec;
  rec.rank = rank;
  rec.target_sql = TargetViewQuery(result.view, table, selection).ToSql();
  rec.comparison_sql = ComparisonViewQuery(result.view, table).ToSql();
  rec.combined_sql = CombinedViewQuery(result.view, table, selection).ToSql();
  rec.result = std::move(result);
  return rec;
}

/// The provisional top-k out of one boundary's estimates, in the shared
/// RanksBefore() order, bounds at +/- eps.
std::vector<ProvisionalView> ProvisionalTopK(
    std::vector<ViewEstimate> estimates, size_t k, double eps) {
  std::sort(estimates.begin(), estimates.end(), RanksBefore);
  if (k > 0 && estimates.size() > k) estimates.resize(k);
  std::vector<ProvisionalView> top;
  top.reserve(estimates.size());
  for (ViewEstimate& e : estimates) {
    ProvisionalView pv;
    pv.view = std::move(e.view);
    pv.utility = e.utility;
    pv.lower = e.utility - eps;
    pv.upper = e.utility + eps;
    top.push_back(std::move(pv));
  }
  return top;
}

}  // namespace

Result<SeeDBRequest> SeeDBRequest::FromSql(const std::string& input_query) {
  SEEDB_ASSIGN_OR_RETURN(db::sql::InputQuery q,
                         db::sql::ParseInputQuery(input_query));
  SeeDBRequest request(q.table);
  request.Where(q.selection);
  return request;
}

Result<RecommendationSession> SeeDB::Open(const SeeDBRequest& request) {
  static std::atomic<uint64_t> next_trace_id{1};
  RecommendationSession session;
  session.engine_ = engine_;
  session.table_ = request.table();
  session.selection_ = request.selection();
  session.options_ = request.options();
  session.trace_id_ =
      next_trace_id.fetch_add(1, std::memory_order_relaxed);
  const SeeDBOptions& options = session.options_;
  SEEDB_TRACE_SPAN_IF(open_span, "session.open", session.trace_id_,
                      obs::TraceRecorder::ShouldTrace(options.trace));

  // Metadata collection + query generation (enumerate, prune).
  Stopwatch plan_timer;
  SEEDB_ASSIGN_OR_RETURN(
      GeneratedViews generated,
      GenerateViews(engine_, session.table_, session.selection_,
                    options.view_space, options.pruning));
  session.static_pruning_ = std::move(generated.pruning);
  const PruningReport& pruning = session.static_pruning_;
  if (pruning.kept.empty()) {
    return Status::InvalidArgument("pruning removed every candidate view");
  }

  // Sampling strategy: kMaterialized builds (or reuses) an in-memory
  // reservoir sample and redirects every view query to it (§3.3).
  std::string exec_table = session.table_;
  if (options.sampling == SamplingStrategy::kMaterialized) {
    SEEDB_ASSIGN_OR_RETURN(const db::Table* data,
                           engine_->catalog()->GetTable(session.table_));
    if (data->num_rows() > options.sample_rows && options.sample_rows > 0) {
      std::string sample_name = StringPrintf(
          "__%s_sample_%zu_%llu", session.table_.c_str(), options.sample_rows,
          static_cast<unsigned long long>(options.sample_seed));
      if (!engine_->catalog()->HasTable(sample_name)) {
        SEEDB_ASSIGN_OR_RETURN(
            db::Table sample,
            db::MaterializeReservoirSample(*data, options.sample_rows,
                                           options.sample_seed));
        engine_->catalog()->PutTable(sample_name, std::move(sample));
      }
      exec_table = std::move(sample_name);
    }
  }

  // Optimization: build the combined-query execution plan. Group-count
  // estimates come from the table the plan will actually scan.
  SEEDB_ASSIGN_OR_RETURN(const db::TableStats* stats,
                         engine_->catalog()->GetStats(exec_table));
  SEEDB_ASSIGN_OR_RETURN(
      ExecutionPlan plan,
      BuildExecutionPlan(pruning.kept, exec_table, session.selection_, *stats,
                         options.optimizer));
  session.plan_ = std::make_unique<ExecutionPlan>(std::move(plan));
  SEEDB_ASSIGN_OR_RETURN(const db::Table* exec_data,
                         engine_->catalog()->GetTable(exec_table));
  session.total_rows_ = exec_data->num_rows();
  session.planning_seconds_ = plan_timer.ElapsedSeconds();

  session.stats_before_ = engine_->stats();
  if (options.strategy == ExecutionStrategy::kPhasedSharedScan &&
      !session.plan_->queries.empty()) {
    SEEDB_ASSIGN_OR_RETURN(
        PhasedPlanExecution run,
        PhasedPlanExecution::Begin(engine_, *session.plan_, options.metric,
                                   session.ExecOptions()));
    session.phased_ =
        std::make_unique<PhasedPlanExecution>(std::move(run));
  }
  return session;
}

ExecutorOptions RecommendationSession::ExecOptions() const {
  ExecutorOptions exec;
  exec.parallelism = options_.parallelism;
  exec.enable_simd = options_.enable_simd;
  exec.strategy = options_.strategy;
  exec.online_pruning = options_.online_pruning;
  if (exec.online_pruning.keep_k == 0) {
    // The online pruner protects the top-k views only. bottom_k cannot be
    // protected by construction — pruning discards exactly the low-utility
    // views — so a pruned run's low_utility_views rank survivors only
    // (ExecutionProfile::examined_view_count counts them).
    exec.online_pruning.keep_k = options_.k;
  }
  exec.cancel = cancel_.get();
  exec.trace = options_.trace;
  // The blocking strategies enforce the session budget inside ExecutePlan
  // (the phased session meters it itself at phase boundaries — CheckBudget —
  // so PhasedPlanExecution ignores this field).
  exec.memory_budget_bytes = options_.memory_budget_bytes;
  return exec;
}

size_t RecommendationSession::phases_run() const {
  if (phased_ != nullptr) return phased_->phases_run();
  return executed_ ? 1 : 0;
}

uint64_t RecommendationSession::memory_bytes() const {
  return phased_ != nullptr ? phased_->agg_state_bytes() : 0;
}

bool RecommendationSession::done() const {
  if (finished_ || budget_exceeded_) return true;
  if (phased_ != nullptr) return phased_->done() || cancelled();
  return executed_;
}

Result<std::optional<ProgressUpdate>> RecommendationSession::Next() {
  if (done()) return std::optional<ProgressUpdate>();
  return phased_ != nullptr ? NextPhased() : NextBlocking();
}

Status RecommendationSession::Resume() {
  if (finished_) {
    return Status::Internal("recommendation session already finished");
  }
  if (!cancelled()) {
    return Status::InvalidArgument("session is not cancelled");
  }
  if (phased_ == nullptr && executed_) {
    return Status::InvalidArgument(
        "blocking strategies execute in one shot and cannot resume a "
        "cancelled run; use the phased strategy for resumable sessions");
  }
  // Reset the token BEFORE re-opening the scan, or the resume pass would
  // observe it and cancel itself immediately.
  cancel_->store(false, std::memory_order_relaxed);
  if (phased_ != nullptr && phased_->cancelled()) {
    SEEDB_RETURN_IF_ERROR(phased_->Resume());
    if (phased_->cancelled()) return Status::OK();  // re-cancelled mid-resume
  }
  observed_cancel_ = false;
  return Status::OK();
}

Status RecommendationSession::CheckBudget() {
  if (options_.memory_budget_bytes == 0 || phased_ == nullptr) {
    return Status::OK();
  }
  const size_t footprint = phased_->agg_state_bytes();
  if (footprint <= options_.memory_budget_bytes) return Status::OK();
  budget_exceeded_ = true;
  return Status::OutOfRange(StringPrintf(
      "session memory budget exceeded: aggregation state is %zu bytes, "
      "budget %zu bytes (Finish() returns partial results over the rows "
      "scanned so far)",
      footprint, options_.memory_budget_bytes));
}

Result<std::optional<ProgressUpdate>> RecommendationSession::NextPhased() {
  SEEDB_TRACE_SPAN_IF(next_span, "session.next_phase", trace_id_,
                      obs::TraceRecorder::ShouldTrace(options_.trace));
  SEEDB_ASSIGN_OR_RETURN(PhaseSnapshot snap,
                         phased_->Step(/*collect_estimates=*/true));
  ProgressUpdate update;
  update.phase = snap.phase;
  update.total_phases = snap.total_phases;
  update.phase_seconds = snap.phase_seconds;
  update.rows_scanned = snap.rows_consumed;
  update.total_rows = phased_->num_rows();
  update.views_active = snap.views_active;
  update.views_pruned_online = snap.views_pruned;
  update.ci_half_width = snap.ci_half_width;
  update.memory_bytes = phased_->agg_state_bytes();
  update.early_stopped = snap.early_stopped;
  update.cancelled = snap.cancelled;
  if (snap.cancelled) observed_cancel_ = true;
  // The phase that blew the budget yields no update: the graceful error IS
  // the report, and done() is true from here on.
  SEEDB_RETURN_IF_ERROR(CheckBudget());
  if (snap.has_estimates) {
    update.top_views = ProvisionalTopK(std::move(snap.estimates), options_.k,
                                       snap.ci_half_width);
  }
  if (sink_) sink_(update);
  return std::optional<ProgressUpdate>(std::move(update));
}

// Non-phased strategies run in one shot: the first Next() executes the
// whole plan and yields a single update carrying the final ranking with
// degenerate (zero-width) bounds.
Result<std::optional<ProgressUpdate>> RecommendationSession::NextBlocking() {
  SEEDB_TRACE_SPAN_IF(next_span, "session.next_phase", trace_id_,
                      obs::TraceRecorder::ShouldTrace(options_.trace));
  Stopwatch exec_timer;
  SEEDB_ASSIGN_OR_RETURN(
      std::vector<ViewResult> results,
      ExecutePlan(engine_, *plan_, options_.metric, ExecOptions(), &report_));
  executed_ = true;
  blocking_results_ = std::move(results);
  if (report_.cancelled) observed_cancel_ = true;
  if (report_.budget_exceeded) {
    // Same contract as the phased path: the Next() that observed the breach
    // yields no update — the graceful error IS the report — and Finish()
    // assembles partial results from the work completed before it.
    budget_exceeded_ = true;
    return Status::OutOfRange(StringPrintf(
        "session memory budget exceeded: aggregation state is %zu bytes, "
        "budget %zu bytes (Finish() returns partial results over the work "
        "completed so far)",
        report_.agg_state_bytes, options_.memory_budget_bytes));
  }

  ProgressUpdate update;
  update.phase = 1;
  update.total_phases = 1;
  update.phase_seconds = exec_timer.ElapsedSeconds();
  // Fused runs report the scan's own row count (exact even under
  // cancellation); a cancelled per-query run estimates by the fraction of
  // queries that completed — each one was a full table pass.
  if (report_.table_scans > 0) {
    update.rows_scanned = report_.rows_scanned;
  } else if (report_.cancelled && !plan_->queries.empty()) {
    update.rows_scanned = static_cast<uint64_t>(total_rows_) *
                          report_.queries_executed / plan_->queries.size();
  } else {
    update.rows_scanned = total_rows_;
  }
  update.total_rows = total_rows_;
  update.views_active = blocking_results_->size();
  update.cancelled = report_.cancelled;
  std::vector<ViewResult> ranked = *blocking_results_;
  for (ViewResult& vr : SelectTopK(std::move(ranked), options_.k)) {
    ProvisionalView pv;
    pv.utility = vr.utility;
    pv.lower = pv.upper = vr.utility;
    pv.view = std::move(vr.view);
    update.top_views.push_back(std::move(pv));
  }
  if (sink_) sink_(update);
  return std::optional<ProgressUpdate>(std::move(update));
}

Result<RecommendationSet> RecommendationSession::Finish() {
  if (finished_) {
    return Status::Internal("recommendation session already finished");
  }
  SEEDB_TRACE_SPAN_IF(finish_span, "session.finalize", trace_id_,
                      obs::TraceRecorder::ShouldTrace(options_.trace));

  // Complete any remaining work. A cancelled or budget-stopped session
  // skips straight to assembling partial results. Without a sink the drain
  // is silent (Step without estimates — the cheap path); with one, each
  // drained phase goes through NextPhased() so the sink sees every update.
  std::vector<ViewResult> results;
  if (phased_ != nullptr) {
    while (!done()) {
      if (sink_) {
        Result<std::optional<ProgressUpdate>> update = NextPhased();
        if (!update.ok()) {
          // A budget breach mid-drain stops the drain, not the Finish();
          // any other error is real.
          if (!budget_exceeded_) return update.status();
          break;
        }
      } else {
        SEEDB_RETURN_IF_ERROR(
            phased_->Step(/*collect_estimates=*/false).status());
        Status budget = CheckBudget();
        if (!budget.ok()) break;  // stop the drain; assemble partial results
      }
    }
    SEEDB_ASSIGN_OR_RETURN(results, phased_->Finish(&report_));
  } else {
    if (!executed_) {
      if (sink_) {
        // Route through NextBlocking() so the single update reaches the
        // sink even when the caller skips straight to Finish(). A budget
        // breach surfaces there as OutOfRange; Finish() still assembles the
        // partial results like the phased drain does.
        Status drive = NextBlocking().status();
        if (!drive.ok() && !budget_exceeded_) return drive;
        results = std::move(*blocking_results_);
      } else {
        SEEDB_ASSIGN_OR_RETURN(
            results,
            ExecutePlan(engine_, *plan_, options_.metric, ExecOptions(),
                        &report_));
        if (report_.cancelled) observed_cancel_ = true;
        if (report_.budget_exceeded) budget_exceeded_ = true;
      }
    } else {
      results = std::move(*blocking_results_);
    }
  }
  finished_ = true;
  db::EngineStatsSnapshot after = engine_->stats();

  RecommendationSet set;
  set.metric = options_.metric;
  set.pruned_views = static_pruning_.pruned;
  set.online_pruned_views = report_.online_pruned;
  set.profile.examined_view_count = results.size();

  // Ranking. bottom_k ranks the examined survivors only: views the online
  // pruner retired are in online_pruned_views, not here.
  if (options_.bottom_k > 0) {
    std::vector<ViewResult> copy = results;
    std::vector<ViewResult> worst =
        SelectBottomK(std::move(copy), options_.bottom_k);
    for (size_t i = 0; i < worst.size(); ++i) {
      set.low_utility_views.push_back(
          MakeRecommendation(i + 1, std::move(worst[i]), table_, selection_));
    }
  }
  std::vector<ViewResult> best = SelectTopK(std::move(results), options_.k);
  for (size_t i = 0; i < best.size(); ++i) {
    set.top_views.push_back(
        MakeRecommendation(i + 1, std::move(best[i]), table_, selection_));
  }

  set.profile.views_enumerated = static_pruning_.total_considered();
  set.profile.views_pruned = static_pruning_.pruned.size();
  set.profile.views_executed = static_pruning_.kept.size();
  set.profile.views_pruned_online = report_.views_pruned_online;
  set.profile.phases_executed = report_.phases_executed;
  set.profile.early_stopped = report_.early_stopped;
  // "Cancelled" means work was actually truncated — a Cancel() that lands
  // after the last phase (or after a blocking run returned) leaves a
  // complete, trustworthy result and is not flagged.
  set.profile.cancelled =
      report_.cancelled ||
      (phased_ != nullptr && cancelled() && !report_.early_stopped &&
       phased_->rows_consumed() < phased_->num_rows());
  set.profile.budget_exceeded = budget_exceeded_;
  if (report_.table_scans > 0) {
    // Exact per-run counts from the scan itself: concurrent sessions on
    // one engine do not bleed into each other's profiles.
    set.profile.queries_issued = report_.queries_executed;
    set.profile.table_scans = report_.table_scans;
    set.profile.rows_scanned = report_.rows_scanned;
    set.profile.vectorized_morsels = report_.vectorized_morsels;
    set.profile.simd_morsels = report_.simd_morsels;
    set.profile.cache_hits = report_.cache_hits;
    set.profile.cache_misses = report_.cache_misses;
  } else {
    // kPerQuery: engine-wide counter deltas (no per-run accounting there;
    // concurrent runs may interleave).
    set.profile.queries_issued =
        after.queries_executed - stats_before_.queries_executed;
    set.profile.table_scans = after.table_scans - stats_before_.table_scans;
    set.profile.rows_scanned =
        after.rows_scanned - stats_before_.rows_scanned;
  }
  set.profile.planning_seconds = planning_seconds_;
  set.profile.execution_seconds = report_.total_seconds;
  set.profile.total_seconds = total_timer_.ElapsedSeconds();
  return set;
}

Result<RecommendationSet> SeeDB::Run(const SeeDBRequest& request) {
  SEEDB_ASSIGN_OR_RETURN(RecommendationSession session, Open(request));
  return session.Finish();
}

}  // namespace seedb::core
