#include "core/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace seedb::core {

const char* DistanceMetricToString(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kEarthMovers:
      return "earth_movers";
    case DistanceMetric::kEuclidean:
      return "euclidean";
    case DistanceMetric::kKullbackLeibler:
      return "kl_divergence";
    case DistanceMetric::kJensenShannon:
      return "jensen_shannon";
    case DistanceMetric::kL1:
      return "l1";
    case DistanceMetric::kChebyshev:
      return "chebyshev";
    case DistanceMetric::kHellinger:
      return "hellinger";
  }
  return "?";
}

Result<DistanceMetric> ParseDistanceMetric(const std::string& name) {
  std::string low = ToLower(name);
  for (DistanceMetric m : AllDistanceMetrics()) {
    if (low == DistanceMetricToString(m)) return m;
  }
  if (low == "emd") return DistanceMetric::kEarthMovers;
  if (low == "l2") return DistanceMetric::kEuclidean;
  if (low == "kl") return DistanceMetric::kKullbackLeibler;
  if (low == "js") return DistanceMetric::kJensenShannon;
  return Status::InvalidArgument("unknown distance metric '" + name + "'");
}

const std::vector<DistanceMetric>& AllDistanceMetrics() {
  static const std::vector<DistanceMetric> kAll = {
      DistanceMetric::kEarthMovers,     DistanceMetric::kEuclidean,
      DistanceMetric::kKullbackLeibler, DistanceMetric::kJensenShannon,
      DistanceMetric::kL1,              DistanceMetric::kChebyshev,
      DistanceMetric::kHellinger,
  };
  return kAll;
}

namespace {

double EarthMovers(const std::vector<double>& p, const std::vector<double>& q) {
  // 1-D EMD over equally spaced bins: integrate |CDF_p - CDF_q|.
  double emd = 0.0;
  double cum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    cum += p[i] - q[i];
    emd += std::abs(cum);
  }
  return emd;
}

double Euclidean(const std::vector<double>& p, const std::vector<double>& q) {
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    double d = p[i] - q[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    sum += p[i] * std::log(p[i] / std::max(q[i], kKlEpsilon));
  }
  return std::max(0.0, sum);
}

double JensenShannon(const std::vector<double>& p,
                     const std::vector<double>& q) {
  double js = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    double m = 0.5 * (p[i] + q[i]);
    if (p[i] > 0.0 && m > 0.0) js += 0.5 * p[i] * std::log(p[i] / m);
    if (q[i] > 0.0 && m > 0.0) js += 0.5 * q[i] * std::log(q[i] / m);
  }
  return std::sqrt(std::max(0.0, js));
}

double L1(const std::vector<double>& p, const std::vector<double>& q) {
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) sum += std::abs(p[i] - q[i]);
  return sum;
}

double Chebyshev(const std::vector<double>& p, const std::vector<double>& q) {
  double best = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    best = std::max(best, std::abs(p[i] - q[i]));
  }
  return best;
}

double Hellinger(const std::vector<double>& p, const std::vector<double>& q) {
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    double d = std::sqrt(p[i]) - std::sqrt(q[i]);
    sum += d * d;
  }
  return std::sqrt(0.5 * sum);
}

}  // namespace

Result<double> Distance(const std::vector<double>& p,
                        const std::vector<double>& q, DistanceMetric metric) {
  if (p.empty() || q.empty()) {
    return Status::InvalidArgument("distributions must be non-empty");
  }
  if (p.size() != q.size()) {
    return Status::InvalidArgument(
        StringPrintf("distribution sizes differ: %zu vs %zu", p.size(),
                     q.size()));
  }
  switch (metric) {
    case DistanceMetric::kEarthMovers:
      return EarthMovers(p, q);
    case DistanceMetric::kEuclidean:
      return Euclidean(p, q);
    case DistanceMetric::kKullbackLeibler:
      return KlDivergence(p, q);
    case DistanceMetric::kJensenShannon:
      return JensenShannon(p, q);
    case DistanceMetric::kL1:
      return L1(p, q);
    case DistanceMetric::kChebyshev:
      return Chebyshev(p, q);
    case DistanceMetric::kHellinger:
      return Hellinger(p, q);
  }
  return Status::Internal("unreachable");
}

double MetricUtilityRange(DistanceMetric metric, size_t group_count) {
  const double groups = static_cast<double>(std::max<size_t>(group_count, 1));
  switch (metric) {
    case DistanceMetric::kEarthMovers:
      // Worst case: all mass at opposite ends of the G-bin ground line,
      // |CDF diff| = 1 over G-1 prefixes. A 1-bin space has diameter 0 but
      // the bound must stay positive for the CI math, hence the floor of 1.
      return std::max(1.0, groups - 1.0);
    case DistanceMetric::kEuclidean:
      // Disjoint point masses: sqrt(1^2 + 1^2).
      return std::sqrt(2.0);
    case DistanceMetric::kKullbackLeibler:
      // Zero comparison bins are smoothed to kKlEpsilon, so
      // sum p_i * log(p_i / q_i') <= log(1 / kKlEpsilon).
      return std::log(1.0 / kKlEpsilon);
    case DistanceMetric::kJensenShannon:
      // JS distance with natural log is bounded by sqrt(ln 2).
      return std::sqrt(std::log(2.0));
    case DistanceMetric::kL1:
      return 2.0;  // 2x total variation
    case DistanceMetric::kChebyshev:
      return 1.0;
    case DistanceMetric::kHellinger:
      return 1.0;
  }
  return 2.0;
}

}  // namespace seedb::core
