#include "core/pruning.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "core/correlation.h"

namespace seedb::core {

const char* PruneReasonToString(PruneReason reason) {
  switch (reason) {
    case PruneReason::kLowVariance:
      return "low variance";
    case PruneReason::kCorrelatedDimension:
      return "correlated dimension";
    case PruneReason::kRarelyAccessed:
      return "rarely accessed";
  }
  return "?";
}

Result<PruningReport> PruneViews(const std::vector<ViewDescriptor>& views,
                                 const db::Table& table,
                                 const db::TableStats& stats,
                                 const db::AccessTracker* tracker,
                                 const std::string& table_name,
                                 const PruningOptions& options,
                                 db::Catalog* catalog) {
  PruningReport report;

  // Dimension-level decisions are computed once and applied to every view on
  // that dimension.
  std::set<std::string> dims_in_views;
  for (const auto& v : views) dims_in_views.insert(v.dimension);

  // 1. Variance-based pruning: dimensions with near-zero diversity.
  std::unordered_set<std::string> low_variance_dims;
  std::unordered_set<std::string> constant_measures;
  if (options.enable_variance) {
    for (const auto& dim : dims_in_views) {
      SEEDB_ASSIGN_OR_RETURN(const db::ColumnStats* cs, stats.Find(dim));
      if (cs->diversity < options.min_dimension_diversity) {
        low_variance_dims.insert(dim);
      }
    }
    if (options.prune_constant_measures) {
      for (const auto& col : stats.columns) {
        if (col.role == db::ColumnRole::kMeasure && col.row_count > 0 &&
            col.variance == 0.0) {
          constant_measures.insert(col.name);
        }
      }
    }
  }

  // 2. Correlation clustering: map each non-representative dimension to its
  // representative.
  std::unordered_map<std::string, std::string> replaced_by;
  if (options.enable_correlation) {
    std::vector<std::string> dims(dims_in_views.begin(), dims_in_views.end());
    SEEDB_ASSIGN_OR_RETURN(
        std::vector<DimensionCluster> clusters,
        ClusterCorrelatedDimensions(table, stats, dims,
                                    options.correlation_threshold, catalog,
                                    table_name));
    for (const auto& cluster : clusters) {
      for (const auto& member : cluster.members) {
        if (member != cluster.representative) {
          replaced_by[member] = cluster.representative;
        }
      }
    }
  }

  // 3. Access-frequency pruning (activates only with sufficient history).
  std::unordered_set<std::string> rarely_accessed;
  if (options.enable_access_frequency && tracker != nullptr &&
      tracker->QueryCount(table_name) >= options.min_recorded_queries) {
    std::set<std::string> columns = dims_in_views;
    for (const auto& v : views) {
      if (!v.measure.empty()) columns.insert(v.measure);
    }
    for (const auto& col : columns) {
      if (tracker->AccessFrequency(table_name, col) <
          options.min_access_frequency) {
        rarely_accessed.insert(col);
      }
    }
  }

  for (const auto& view : views) {
    if (low_variance_dims.count(view.dimension)) {
      report.pruned.push_back({view, PruneReason::kLowVariance, ""});
      continue;
    }
    if (!view.measure.empty() && constant_measures.count(view.measure)) {
      report.pruned.push_back({view, PruneReason::kLowVariance,
                               "constant measure"});
      continue;
    }
    if (auto it = replaced_by.find(view.dimension); it != replaced_by.end()) {
      report.pruned.push_back(
          {view, PruneReason::kCorrelatedDimension, it->second});
      continue;
    }
    if (rarely_accessed.count(view.dimension) ||
        (!view.measure.empty() && rarely_accessed.count(view.measure))) {
      report.pruned.push_back({view, PruneReason::kRarelyAccessed, ""});
      continue;
    }
    report.kept.push_back(view);
  }
  return report;
}

}  // namespace seedb::core
