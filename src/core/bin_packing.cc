#include "core/bin_packing.h"

#include <algorithm>
#include <numeric>

namespace seedb::core {
namespace {

// Sorted item order: heaviest first; ties by id for determinism.
std::vector<size_t> DescendingOrder(const std::vector<BinPackingItem>& items) {
  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (items[a].weight != items[b].weight) {
      return items[a].weight > items[b].weight;
    }
    return items[a].id < items[b].id;
  });
  return order;
}

struct BinState {
  uint64_t load = 0;
  std::vector<size_t> item_ids;
};

}  // namespace

BinPackingSolution FirstFitDecreasing(const std::vector<BinPackingItem>& items,
                                      const BinPackingOptions& options) {
  BinPackingSolution solution;
  std::vector<BinState> bins;
  for (size_t idx : DescendingOrder(items)) {
    const BinPackingItem& item = items[idx];
    bool placed = false;
    for (auto& bin : bins) {
      bool fits = bin.load + item.weight <= options.capacity;
      bool room = options.max_items_per_bin == 0 ||
                  bin.item_ids.size() < options.max_items_per_bin;
      if (fits && room) {
        bin.load += item.weight;
        bin.item_ids.push_back(item.id);
        placed = true;
        break;
      }
    }
    if (!placed) {
      // New bin; oversized items live alone (they exceed capacity by
      // themselves, but the query must still run).
      bins.push_back({item.weight, {item.id}});
    }
  }
  for (auto& bin : bins) {
    std::sort(bin.item_ids.begin(), bin.item_ids.end());
    solution.bins.push_back(std::move(bin.item_ids));
  }
  return solution;
}

namespace {

/// Depth-first search placing items (heaviest first) into bins, pruning on a
/// simple capacity lower bound and the incumbent solution.
class ExactSolver {
 public:
  ExactSolver(const std::vector<BinPackingItem>& items,
              const BinPackingOptions& options)
      : items_(items), options_(options), order_(DescendingOrder(items)) {}

  BinPackingSolution Solve() {
    // Seed the incumbent with FFD so pruning starts tight.
    BinPackingSolution ffd = FirstFitDecreasing(items_, options_);
    best_bins_ = ffd.bins;
    best_count_ = ffd.bins.size();

    uint64_t total = 0;
    for (const auto& item : items_) total += item.weight;
    lower_bound_ =
        options_.capacity == 0
            ? items_.size()
            : static_cast<size_t>((total + options_.capacity - 1) /
                                  options_.capacity);
    lower_bound_ = std::max<size_t>(lower_bound_, items_.empty() ? 0 : 1);

    std::vector<BinState> bins;
    Search(0, &bins);

    BinPackingSolution solution;
    solution.bins = best_bins_;
    for (auto& b : solution.bins) std::sort(b.begin(), b.end());
    solution.exact = true;
    return solution;
  }

 private:
  void Search(size_t depth, std::vector<BinState>* bins) {
    if (bins->size() >= best_count_) return;  // cannot improve
    if (best_count_ == lower_bound_) return;  // already optimal
    if (depth == order_.size()) {
      best_count_ = bins->size();
      best_bins_.clear();
      for (const auto& bin : *bins) best_bins_.push_back(bin.item_ids);
      return;
    }
    const BinPackingItem& item = items_[order_[depth]];

    // Try existing bins. Symmetry breaking: identical loads are equivalent,
    // skip repeats. Indexed access throughout: the recursive call may grow
    // the vector (opening deeper bins) and reallocate, so references taken
    // before the call would dangle.
    uint64_t last_tried = UINT64_MAX;
    const size_t existing = bins->size();
    for (size_t i = 0; i < existing; ++i) {
      uint64_t load = (*bins)[i].load;
      bool fits = load + item.weight <= options_.capacity;
      bool room = options_.max_items_per_bin == 0 ||
                  (*bins)[i].item_ids.size() < options_.max_items_per_bin;
      if (!fits || !room || load == last_tried) continue;
      last_tried = load;
      (*bins)[i].load += item.weight;
      (*bins)[i].item_ids.push_back(item.id);
      Search(depth + 1, bins);
      (*bins)[i].item_ids.pop_back();
      (*bins)[i].load -= item.weight;
    }

    // Open a new bin.
    bins->push_back({item.weight, {item.id}});
    Search(depth + 1, bins);
    bins->pop_back();
  }

  const std::vector<BinPackingItem>& items_;
  const BinPackingOptions& options_;
  std::vector<size_t> order_;
  std::vector<std::vector<size_t>> best_bins_;
  size_t best_count_ = 0;
  size_t lower_bound_ = 0;
};

}  // namespace

BinPackingSolution ExactBinPacking(const std::vector<BinPackingItem>& items,
                                   const BinPackingOptions& options) {
  if (items.empty()) {
    BinPackingSolution s;
    s.exact = true;
    return s;
  }
  return ExactSolver(items, options).Solve();
}

BinPackingSolution PackBins(const std::vector<BinPackingItem>& items,
                            const BinPackingOptions& options) {
  if (items.size() <= options.exact_solver_limit) {
    return ExactBinPacking(items, options);
  }
  return FirstFitDecreasing(items, options);
}

}  // namespace seedb::core
