// View space enumeration: the cross product A x M x F (§2, challenge (b)).
//
// "The number of candidate views (or visualizations) increases as the square
// of the number of attributes in a table": with d dimensions and m measures
// drawn from n total attributes, |views| = d * m * |F| ~ O(n^2) * |F|.

#ifndef SEEDB_CORE_VIEW_SPACE_H_
#define SEEDB_CORE_VIEW_SPACE_H_

#include <vector>

#include "core/view.h"
#include "db/schema.h"

namespace seedb::core {

struct ViewSpaceOptions {
  /// Aggregate functions F to enumerate; defaults to SUM/AVG/COUNT.
  std::vector<db::AggregateFunction> functions = {
      db::AggregateFunction::kSum,
      db::AggregateFunction::kAvg,
      db::AggregateFunction::kCount,
  };
  /// Also add one COUNT(*) view per dimension (row-frequency views).
  bool include_count_star = false;
  /// Drop views whose grouping attribute appears in the analyst's selection
  /// predicate. A view grouping by the filtered attribute deviates
  /// maximally by construction (e.g. "Laserwave is 100% Laserwave") yet
  /// tells the analyst nothing they did not already state, so it would
  /// crowd the top-k with trivia.
  bool exclude_selection_dimensions = true;
  /// With exclude_selection_dimensions, also drop dimensions whose Cramér's
  /// V association with a selection dimension is at least this (attribute
  /// hierarchies: filtering on `category` makes `sub_category` views
  /// deviate by construction too). Set > 1 to disable.
  double selection_correlation_threshold = 0.95;
};

/// Enumerates all candidate views for a schema: every dimension attribute
/// crossed with every measure attribute and every function. Deterministic
/// order (schema order, then function order).
std::vector<ViewDescriptor> EnumerateViews(const db::Schema& schema,
                                           const ViewSpaceOptions& options = {});

/// Closed-form size of the view space EnumerateViews would produce.
size_t ViewSpaceSize(size_t num_dimensions, size_t num_measures,
                     size_t num_functions, bool include_count_star);

}  // namespace seedb::core

#endif  // SEEDB_CORE_VIEW_SPACE_H_
