// Status: error propagation without exceptions, in the Arrow/RocksDB idiom.
//
// Every fallible operation in SeeDB returns either a Status (no payload) or a
// Result<T> (payload or error). Code that cannot fail returns values directly.

#ifndef SEEDB_UTIL_STATUS_H_
#define SEEDB_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace seedb {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kIOError,
  kInternal,
  /// The service is saturated and shedding load; retry later. The serving
  /// layer's admission control answers `open` with this ("busy" on the wire)
  /// when the Engine has no phase capacity left.
  kUnavailable,
};

/// Returns a stable human-readable name for a StatusCode ("Invalid argument",
/// "Not found", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus, for errors, a message.
///
/// Statuses are cheap to copy (OK carries no allocation) and must be checked:
/// ignoring one silently drops an error. The SEEDB_RETURN_IF_ERROR macro is
/// the usual way to propagate.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace seedb

/// Propagates a non-OK Status to the caller.
#define SEEDB_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::seedb::Status _seedb_status = (expr);    \
    if (!_seedb_status.ok()) return _seedb_status; \
  } while (0)

#define SEEDB_CONCAT_IMPL(a, b) a##b
#define SEEDB_CONCAT(a, b) SEEDB_CONCAT_IMPL(a, b)

/// Evaluates an expression yielding Result<T>; on success binds the value to
/// `lhs`, on error returns the Status to the caller.
#define SEEDB_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto SEEDB_CONCAT(_seedb_result_, __LINE__) = (rexpr);          \
  if (!SEEDB_CONCAT(_seedb_result_, __LINE__).ok())               \
    return SEEDB_CONCAT(_seedb_result_, __LINE__).status();       \
  lhs = std::move(SEEDB_CONCAT(_seedb_result_, __LINE__)).ValueOrDie()

#endif  // SEEDB_UTIL_STATUS_H_
