// Deterministic random number generation for data generators and sampling.
//
// All SeeDB generators take explicit seeds so every experiment is exactly
// reproducible. The engine is xoshiro256** seeded via SplitMix64.

#ifndef SEEDB_UTIL_RANDOM_H_
#define SEEDB_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace seedb {

/// \brief Fast, seedable PRNG (xoshiro256**) with distribution helpers.
///
/// Not cryptographically secure; intended for synthetic data, sampling, and
/// shuffling. Instances are cheap (32 bytes) and not thread-safe: use one per
/// thread.
class Random {
 public:
  explicit Random(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Gaussian();
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// \brief Zipf-distributed integer sampler over {0, ..., n-1}.
///
/// P(k) proportional to 1/(k+1)^s. Precomputes the CDF once (O(n)) and draws
/// in O(log n). s = 0 degenerates to uniform; larger s is more skewed.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double s);

  size_t Sample(Random* rng) const;
  size_t n() const { return cdf_.size(); }
  double s() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;
};

}  // namespace seedb

#endif  // SEEDB_UTIL_RANDOM_H_
