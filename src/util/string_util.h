// Small string helpers used across the library (no locale dependence).

#ifndef SEEDB_UTIL_STRING_UTIL_H_
#define SEEDB_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace seedb {

/// Splits `input` on `delim`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (sufficient for SQL keywords).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with up to `digits` significant decimals, trimming
/// trailing zeros ("3.5", "120", "0.001").
std::string FormatDouble(double v, int digits = 6);

}  // namespace seedb

#endif  // SEEDB_UTIL_STRING_UTIL_H_
