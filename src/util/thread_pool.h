// Fixed-size thread pool used by SeeDB's parallel query execution (§3.3,
// "Parallel Query Execution").

#ifndef SEEDB_UTIL_THREAD_POOL_H_
#define SEEDB_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "base/mutex.h"

namespace seedb {

/// \brief Fixed pool of worker threads with a FIFO task queue.
///
/// Submit() returns a future; ParallelFor() blocks until a range has been
/// fully processed. Destruction drains outstanding tasks.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its completion.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      base::MutexLock lock(&mutex_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.NotifyOne();
    return fut;
  }

  /// Runs fn(i) for i in [begin, end), partitioned across workers; blocks
  /// until all iterations complete. Safe to call with begin >= end (no-op).
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  base::Mutex mutex_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  base::CondVar cv_;
  bool stop_ GUARDED_BY(mutex_) = false;
};

}  // namespace seedb

#endif  // SEEDB_UTIL_THREAD_POOL_H_
