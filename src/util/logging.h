// Minimal leveled logger. Intended for diagnostics in examples and benches;
// library code logs sparingly (warnings for recoverable oddities only).

#ifndef SEEDB_UTIL_LOGGING_H_
#define SEEDB_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace seedb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace seedb

#define SEEDB_LOG(level)                                       \
  ::seedb::internal::LogMessage(::seedb::LogLevel::k##level,   \
                                __FILE__, __LINE__)

#endif  // SEEDB_UTIL_LOGGING_H_
