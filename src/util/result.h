// Result<T>: a value or a Status, in the Arrow idiom.

#ifndef SEEDB_UTIL_RESULT_H_
#define SEEDB_UTIL_RESULT_H_

#include <cassert>
#include <cstdlib>
#include <optional>
#include <utility>

#include "util/status.h"

namespace seedb {

/// \brief Holds either a successfully produced T or the Status explaining why
/// no value could be produced.
///
/// Accessing the value of an error Result aborts; callers are expected to
/// check ok() or use SEEDB_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from an error Status. Constructing a Result from
  /// an OK status is a programming error and aborts.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      std::abort();  // OK status carries no value; this is a bug.
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  T ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const {
    DieIfError();
    return &*value_;
  }
  T* operator->() {
    DieIfError();
    return &*value_;
  }

 private:
  void DieIfError() const {
    if (!ok()) std::abort();
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace seedb

#endif  // SEEDB_UTIL_RESULT_H_
