#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/string_util.h"

namespace seedb {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double n1 = static_cast<double>(count_);
  double n2 = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

EquiWidthHistogram::EquiWidthHistogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  assert(hi > lo);
  assert(buckets > 0);
  counts_.resize(buckets, 0);
}

void EquiWidthHistogram::Add(double x) {
  double pos = (x - lo_) / width_;
  int64_t idx = static_cast<int64_t>(std::floor(pos));
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double EquiWidthHistogram::Quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      double frac =
          counts_[i] == 0 ? 0.0 : (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string EquiWidthHistogram::ToString() const {
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (i) out += " | ";
    out += StringPrintf("[%s,%s): %llu", FormatDouble(lo_ + i * width_, 3).c_str(),
                        FormatDouble(lo_ + (i + 1) * width_, 3).c_str(),
                        static_cast<unsigned long long>(counts_[i]));
  }
  return out;
}

}  // namespace seedb
