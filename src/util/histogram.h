// Streaming summary statistics + equi-width histogram over doubles.
//
// Used by db::Statistics for column profiles (variance-based pruning needs
// variance; the metadata collector reports min/max/distinct estimates) and by
// benches for latency distributions.

#ifndef SEEDB_UTIL_HISTOGRAM_H_
#define SEEDB_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace seedb {

/// \brief Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance (divides by n). Zero for fewer than 2 samples.
  double variance() const;
  /// Sample variance (divides by n-1). Zero for fewer than 2 samples.
  double sample_variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-safe combining).
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Fixed-range equi-width histogram.
///
/// Values outside [lo, hi) clamp into the first/last bucket, so Add never
/// drops a sample.
class EquiWidthHistogram {
 public:
  EquiWidthHistogram(double lo, double hi, size_t buckets);

  void Add(double x);

  size_t bucket_count() const { return counts_.size(); }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  uint64_t total() const { return total_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Approximate quantile (linear interpolation within the bucket).
  double Quantile(double q) const;

  /// Compact single-line rendering, e.g. "[0,10): 3 | [10,20): 7 | ...".
  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace seedb

#endif  // SEEDB_UTIL_HISTOGRAM_H_
