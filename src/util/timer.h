// Wall-clock stopwatch used by the execution profiler and benches.

#ifndef SEEDB_UTIL_TIMER_H_
#define SEEDB_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace seedb {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }
  int64_t ElapsedMillis() const { return ElapsedMicros() / 1000; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace seedb

#endif  // SEEDB_UTIL_TIMER_H_
