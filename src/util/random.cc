#include "util/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace seedb {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Random::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Random::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

ZipfDistribution::ZipfDistribution(size_t n, double s) : s_(s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
}

size_t ZipfDistribution::Sample(Random* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace seedb
