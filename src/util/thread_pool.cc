#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace seedb {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    base::MutexLock lock(&mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      base::MutexLock lock(&mutex_);
      cv_.Wait(&mutex_, [this]() NO_THREAD_SAFETY_ANALYSIS {
        // Runs with mutex_ held (CondVar::Wait re-locks before evaluating).
        return stop_ || !tasks_.empty();
      });
      if (tasks_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  size_t total = end - begin;
  size_t shards = std::min(total, num_threads());
  std::vector<std::future<void>> futures;
  futures.reserve(shards);
  size_t chunk = (total + shards - 1) / shards;
  for (size_t s = 0; s < shards; ++s) {
    size_t lo = begin + s * chunk;
    size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace seedb
