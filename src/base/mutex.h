// Annotated mutex wrappers: the only locking primitives the codebase uses.
//
// base::Mutex / base::MutexLock / base::CondVar wrap the std primitives 1:1
// (zero overhead — everything inlines to the std call) but carry the clang
// thread-safety-analysis attributes from base/thread_annotations.h, so the
// clang CI leg (-Wthread-safety -Werror) proves every access to GUARDED_BY
// state happens under the right lock. tools/lint.py enforces that no naked
// std::mutex / std::lock_guard / std::condition_variable appears outside
// src/base/ — declare shared state GUARDED_BY a base::Mutex instead.
//
// The repo's lock-ordering hierarchy is documented in
// base/thread_annotations.h; keep it current when adding locks.

#ifndef SEEDB_BASE_MUTEX_H_
#define SEEDB_BASE_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.h"

namespace seedb::base {

/// \brief std::mutex with capability annotations. Satisfies *Lockable*, so
/// CondVar (condition_variable_any) can wait on it directly.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock for a whole scope (std::lock_guard with annotations).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Condition variable tied to base::Mutex. Wait() atomically releases
/// and reacquires the mutex, which the analysis treats as continuously held
/// (the std behavior guarantees it is held again whenever Wait returns).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the mutex
  }

  template <typename Predicate>
  void Wait(Mutex* mu, Predicate pred) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex* mu, const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace seedb::base

#endif  // SEEDB_BASE_MUTEX_H_
