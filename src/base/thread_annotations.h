// Clang thread-safety-analysis annotation macros.
//
// These expand to clang's `capability` attributes when the compiler supports
// them (clang with -Wthread-safety) and to nothing otherwise (gcc), so the
// same sources build everywhere while the clang CI leg machine-checks the
// locking discipline with -Wthread-safety -Werror.
//
// Usage, together with base/mutex.h:
//
//   base::Mutex mu_;
//   std::deque<Task> queue_ GUARDED_BY(mu_);      // only touched under mu_
//   void Drain() REQUIRES(mu_);                   // caller must hold mu_
//   void Post(Task t) EXCLUDES(mu_);              // caller must NOT hold mu_
//
// Lock-ordering hierarchy of this codebase (acquire left before right, never
// the reverse; documented here because the analysis checks *discipline*, not
// *order* — order violations deadlock at runtime, so keep this current):
//
//   event loop (implicit, single thread)
//     -> RecommendationServer::sessions_mu_   (session registry)
//       -> ServerSession::mu                  (one session's exec lock)
//         -> Conn::mu                         (one connection's outbox)
//   RecommendationServer::wheel_mu_  and  ::dirty_mu_ are leaf locks: taken
//   alone, never while holding a session or connection lock.
//   db::Catalog / db::AccessTracker / ThreadPool / logging locks are leaves
//   owned by their modules and never held across calls into the server.
//
// New shared state MUST be declared GUARDED_BY its lock (see CONTRIBUTING).

#ifndef SEEDB_BASE_THREAD_ANNOTATIONS_H_
#define SEEDB_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SEEDB_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SEEDB_THREAD_ANNOTATION
#define SEEDB_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a type as a lockable capability ("mutex").
#define CAPABILITY(x) SEEDB_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor (MutexLock).
#define SCOPED_CAPABILITY SEEDB_THREAD_ANNOTATION(scoped_lockable)

/// Data member that may only be read or written while holding `x`.
#define GUARDED_BY(x) SEEDB_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define PT_GUARDED_BY(x) SEEDB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while holding the given capabilities.
#define REQUIRES(...) \
  SEEDB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the given capabilities and does not release them.
#define ACQUIRE(...) SEEDB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the given capabilities (must be held on entry).
#define RELEASE(...) SEEDB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that tries to acquire the capability; the boolean result tells
/// whether it succeeded.
#define TRY_ACQUIRE(...) \
  SEEDB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function whose caller must NOT hold the given capabilities (deadlock
/// guard: the function acquires them itself).
#define EXCLUDES(...) SEEDB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch for code the analysis cannot see through (e.g. a callback
/// documented to run under a lock the analysis cannot prove). Use sparingly
/// and leave a comment naming the lock and why it is provably held.
#define NO_THREAD_SAFETY_ANALYSIS \
  SEEDB_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Declares that a function returns a reference to the given capability
/// (accessor exposing a member mutex).
#define RETURN_CAPABILITY(x) SEEDB_THREAD_ANNOTATION(lock_returned(x))

#endif  // SEEDB_BASE_THREAD_ANNOTATIONS_H_
