// RecommendationServer: many streaming sessions, one Engine, one socket —
// SeeDB as the middleware layer the paper deploys it as (§5), serving
// interactive clients over the line-delimited JSON protocol of
// server/protocol.h.
//
// Shape: an accept loop hands each connection to a reader thread; requests
// on a connection are processed in arrival order, and every session lives
// in a server-wide registry, so a session opened on one connection can be
// cancelled — or, after a disconnect, resumed — from another. Heavy work
// (Next / Finish) serializes per session under that session's own lock;
// cancellation only flips the session's atomic token, so a `cancel` from a
// second connection lands mid-phase and is observed at morsel granularity.
// The Engine itself is concurrent, so sessions on different connections
// scan in parallel — the registry multiplexes sessions, the engine
// multiplexes cores.
//
// Malformed input (truncated JSON, unknown ops, ids after finish) produces
// an {"ok":false,...} response and leaves the loop intact; only an
// over-long line (memory protection) closes the offending connection.

#ifndef SEEDB_SERVER_SERVER_H_
#define SEEDB_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/seedb.h"
#include "core/session.h"
#include "server/json.h"
#include "util/result.h"

namespace seedb::server {

struct ServerOptions {
  /// Listen on a unix-domain socket at this path (preferred for tests and
  /// local tooling: no ports to collide on). Takes precedence over TCP.
  std::string unix_path;
  /// Listen on TCP 127.0.0.1:tcp_port when unix_path is empty; 0 binds an
  /// ephemeral port (read it back with port()).
  int tcp_port = 0;
  /// Requests longer than this close the connection (memory protection).
  size_t max_line_bytes = 1 << 20;
  /// `open` beyond this many live sessions is refused (per server).
  size_t max_sessions = 1024;
};

struct ServerStats {
  uint64_t connections = 0;
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t sessions_opened = 0;
  uint64_t sessions_finished = 0;
};

/// \brief The serving loop: accepts connections, frames request lines, and
/// drives RecommendationSessions against one shared Engine.
///
/// Start() binds and spawns the accept thread; Stop() (idempotent, also run
/// by the destructor) closes the listener and every connection, joins all
/// threads, and drops any unfinished sessions. Thread-safe.
class RecommendationServer {
 public:
  /// `engine` must outlive the server and have its tables registered before
  /// requests arrive (the server adds nothing to the catalog).
  RecommendationServer(db::Engine* engine, ServerOptions options);
  ~RecommendationServer();

  RecommendationServer(const RecommendationServer&) = delete;
  RecommendationServer& operator=(const RecommendationServer&) = delete;

  Status Start();
  void Stop();

  /// The bound TCP port (after Start(), TCP mode only).
  int port() const { return port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  ServerStats stats() const;
  size_t open_sessions() const;

  /// Handles one request line and returns the response line (no trailing
  /// newline). Public so protocol tests can drive the dispatcher without a
  /// socket; the connection threads call exactly this.
  std::string HandleLine(const std::string& line);

 private:
  /// One registry entry: the session plus the lock serializing its heavy
  /// operations (Next / Finish / Resume). Cancel needs no lock — it only
  /// flips the session's shared atomic token.
  struct ServerSession {
    explicit ServerSession(core::RecommendationSession session)
        : session(std::move(session)) {}
    std::mutex mu;
    core::RecommendationSession session;
    /// Set (under mu) once a `finish` ran: a second finisher racing the
    /// registry erase gets a clean not_found instead of an internal error.
    bool finished = false;
  };

  /// One live (or just-exited) connection: its socket and reader thread.
  /// `done` flips as the reader's last act, telling the accept loop's
  /// reaper this entry can be joined and closed.
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  JsonValue Dispatch(const JsonValue& request);
  JsonValue HandleOpen(const std::string& id, const JsonValue& request);
  JsonValue HandleNext(const std::string& id);
  JsonValue HandleCancel(const std::string& id);
  JsonValue HandleResume(const std::string& id);
  JsonValue HandleFinish(const std::string& id);
  JsonValue HandleStatus(const std::string& id);
  std::shared_ptr<ServerSession> FindSession(const std::string& id);

  void AcceptLoop();
  void ConnectionLoop(Connection* conn);
  /// Joins and closes connections whose readers have exited. Runs on the
  /// accept thread (between accepts) and once more from Stop() after that
  /// thread is joined — never concurrently with itself.
  void ReapFinishedConnections();

  db::Engine* engine_;
  core::SeeDB seedb_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  mutable std::mutex sessions_mu_;
  std::unordered_map<std::string, std::shared_ptr<ServerSession>> sessions_;

  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> sessions_finished_{0};
};

}  // namespace seedb::server

#endif  // SEEDB_SERVER_SERVER_H_
