// RecommendationServer: many streaming sessions, one Engine, one socket —
// SeeDB as the middleware layer the paper deploys it as (§5), serving
// interactive clients over the line-delimited JSON protocol of
// server/protocol.h.
//
// Shape: one epoll event loop owns every socket — non-blocking accept,
// reads, and writes, with a per-connection write queue the loop drains as
// the peer allows — and a fixed worker pool executes request handlers and
// phase work. Requests on one connection are processed in arrival order (a
// strand: the connection's pending lines are handled by at most one worker
// at a time); every session lives in a server-wide registry, so a session
// opened on one connection can be cancelled — or, after a disconnect,
// resumed — from another. Heavy work (Next / Finish) serializes per session
// under that session's own lock; cancellation only flips the session's
// atomic token, so a `cancel` from a second connection lands mid-phase and
// is observed at morsel granularity. The Engine itself is concurrent, so
// phases of different sessions scan in parallel — the registry multiplexes
// sessions, the pool multiplexes handlers, the engine multiplexes cores.
//
// Protocol v2 (server/protocol.h): a connection that negotiates the `push`
// capability gets its sessions DRIVEN BY THE SERVER — each `open` schedules
// phase jobs that run one Next() apiece and re-enqueue themselves (so a
// slow session cannot starve the pool), and the session's ProgressSink
// serializes every ProgressUpdate straight into the connection's write
// queue as an unsolicited push frame. Two serving-layer protections ride on
// the same machinery:
//
//   * Idle eviction — a hashed timer wheel (server/timer_wheel.h) the event
//     loop advances; an `open` arms a timer, any touch refreshes the
//     session's last-active stamp, and expiry evicts genuinely idle
//     sessions (cancel + forget; later ops answer not_found).
//   * Admission control — `open` is shed with a structured `busy` error
//     (plus retry_after_ms) once the registry holds max_inflight_phases
//     sessions that still have phases to run, so a saturated Engine queues
//     bounded work instead of unbounded sessions.
//
// Malformed input (truncated JSON, unknown ops, ids after finish) produces
// an {"ok":false,...} response and leaves the loop intact; only an
// over-long line (memory protection) closes the offending connection.

#ifndef SEEDB_SERVER_SERVER_H_
#define SEEDB_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/mutex.h"
#include "core/seedb.h"
#include "core/session.h"
#include "server/json.h"
#include "server/protocol.h"
#include "server/timer_wheel.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace seedb::server {

struct ServerOptions {
  /// Listen on a unix-domain socket at this path (preferred for tests and
  /// local tooling: no ports to collide on). Takes precedence over TCP.
  std::string unix_path;
  /// Listen on TCP 127.0.0.1:tcp_port when unix_path is empty; 0 binds an
  /// ephemeral port (read it back with port()).
  int tcp_port = 0;
  /// Requests longer than this close the connection (memory protection).
  size_t max_line_bytes = 1 << 20;
  /// `open` beyond this many live sessions is refused (per server).
  size_t max_sessions = 1024;
  /// Worker threads running request handlers and push-mode phase jobs.
  /// 0 = auto (scaled to the machine, at least 2).
  size_t worker_threads = 0;
  /// Sessions untouched for this long are evicted: cancelled, forgotten,
  /// and later ops on the id answer not_found. 0 = never evict.
  uint64_t session_idle_timeout_ms = 0;
  /// Admission control: `open` answers `busy` (kUnavailable) while this
  /// many already-open sessions still have phases to run. 0 = unlimited.
  size_t max_inflight_phases = 0;
  /// A connection whose unsent output exceeds this is dropped — a slow or
  /// stuck reader must not pin arbitrary memory.
  size_t max_write_queue_bytes = 32u << 20;
};

struct ServerStats {
  uint64_t connections = 0;
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t sessions_opened = 0;
  uint64_t sessions_finished = 0;
  /// Idle sessions reaped by the timer wheel.
  uint64_t sessions_evicted = 0;
  /// `open` requests shed with `busy` by admission control.
  uint64_t sessions_rejected = 0;
  /// Unsolicited protocol-v2 frames written (progress / drained / errors).
  uint64_t push_frames_sent = 0;
};

/// \brief The serving loop: accepts connections, frames request lines, and
/// drives RecommendationSessions against one shared Engine.
///
/// Start() binds and spawns the event loop + worker pool; Stop()
/// (idempotent, also run by the destructor) closes the listener and every
/// connection, joins all threads, and drops any unfinished sessions.
/// Thread-safe.
class RecommendationServer {
 public:
  /// `engine` must outlive the server and have its tables registered before
  /// requests arrive (the server adds nothing to the catalog).
  RecommendationServer(db::Engine* engine, ServerOptions options);
  ~RecommendationServer();

  RecommendationServer(const RecommendationServer&) = delete;
  RecommendationServer& operator=(const RecommendationServer&) = delete;

  Status Start();
  void Stop();

  /// The bound TCP port (after Start(), TCP mode only).
  int port() const { return port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  ServerStats stats() const;
  size_t open_sessions() const;

  /// Handles one request line and returns the response line (no trailing
  /// newline). Public so protocol tests can drive the dispatcher without a
  /// socket (no Start() needed); such lines run as a legacy v1 peer —
  /// `hello` negotiates but push frames have nowhere to go.
  std::string HandleLine(const std::string& line);

 private:
  /// One live connection. The event loop owns the fd and the read side;
  /// workers only append to the write queue (`outbox`) and flag the loop.
  /// `handshake` is strand state: only the single worker running this
  /// connection's strand touches it.
  struct Conn {
    int fd = -1;
    /// Set by the loop before the fd closes; writers drop output once set.
    std::atomic<bool> closed{false};

    // Loop-only state.
    std::string rbuf;
    bool want_write = false;
    bool read_shut = false;

    base::Mutex mu;
    std::deque<std::string> lines GUARDED_BY(mu);
    bool strand_scheduled GUARDED_BY(mu) = false;
    std::string outbox GUARDED_BY(mu);
    /// Steady stamp (µs) of the enqueue that made `outbox` non-empty; 0
    /// while drained. Feeds the server.outbox.flush_us histogram — the
    /// time a queued frame waits before the loop fully drains the queue.
    uint64_t outbox_since_us GUARDED_BY(mu) = 0;
    bool close_after_flush GUARDED_BY(mu) = false;
    bool overflowed GUARDED_BY(mu) = false;

    // Strand-only state (see class comment).
    Handshake handshake;
  };

  /// One registry entry: the session plus the lock serializing its heavy
  /// operations (Next / Finish / Resume / the push driver's phases). Cancel
  /// needs no lock — it only flips the session's shared atomic token.
  struct ServerSession {
    explicit ServerSession(core::RecommendationSession session)
        : session(std::move(session)) {}
    base::Mutex mu;
    /// Heavy operations (Next / Finish / Resume) serialize under mu; NOT
    /// GUARDED_BY because Cancel() is deliberately lock-free — it only
    /// flips the session's shared atomic token from any thread.
    core::RecommendationSession session;
    /// Set once a `finish` ran: a second finisher racing the registry
    /// erase gets a clean not_found instead of an internal error.
    bool finished GUARDED_BY(mu) = false;

    /// Wall stamp of the last request (or server-driven phase) touching
    /// this session; the timer wheel's expiry check reads it to tell idle
    /// sessions from merely long-scheduled ones.
    std::atomic<int64_t> last_active_ms{0};
    /// Set by EvictSession after the registry forgets the id. From then on
    /// PushFrameLocked drops this incarnation's frames (a queued phase job
    /// or an in-flight Next must not emit after the terminal `drained`);
    /// only the eviction-sent drained itself bypasses the suppression.
    std::atomic<bool> evicted{false};
    /// Counted against max_inflight_phases. Cleared once the session
    /// drains (v2), finishes, or is evicted; resume re-arms it.
    std::atomic<bool> counted_inflight{false};

    // Protocol-v2 push-driving state.
    bool driving GUARDED_BY(mu) = false;
    uint64_t push_seq GUARDED_BY(mu) = 0;
    /// A terminal `drained` frame actually reached the push connection's
    /// write queue — exactly-once bookkeeping between the phase driver and
    /// eviction.
    bool drained_sent GUARDED_BY(mu) = false;
    /// The connection receiving this session's push frames (rebound by a
    /// `resume` from another connection; cancelled when it disconnects).
    std::weak_ptr<Conn> push_conn GUARDED_BY(mu);
  };

  /// Per-request context: the connection a line arrived on (null for the
  /// socketless HandleLine()) and an action to run after the response has
  /// been queued — how a push-mode `open`/`resume` starts the phase driver
  /// without its first frame overtaking the ack.
  struct ReqCtx {
    std::shared_ptr<Conn> conn;
    std::function<void()> after_send;
  };

  // Request dispatch (workers, on a connection's strand).
  std::string HandleLineOnConn(const std::string& line, ReqCtx* ctx);
  JsonValue Dispatch(const JsonValue& request, ReqCtx* ctx);
  JsonValue HandleHello(const JsonValue& request, ReqCtx* ctx);
  JsonValue HandleOpen(const std::string& id, const JsonValue& request,
                       ReqCtx* ctx);
  JsonValue HandleNext(const std::string& id);
  JsonValue HandleCancel(const std::string& id);
  JsonValue HandleResume(const std::string& id, ReqCtx* ctx);
  JsonValue HandleFinish(const std::string& id);
  JsonValue HandleStatus(const std::string& id);
  JsonValue HandleMetrics();
  std::shared_ptr<ServerSession> FindSession(const std::string& id)
      EXCLUDES(sessions_mu_);
  /// Refreshes the session's idle stamp (every op that names a live id).
  void Touch(ServerSession* entry);

  // Push driving (workers).
  void StartDrivingLocked(ServerSession* entry,
                          const std::shared_ptr<Conn>& conn)
      REQUIRES(entry->mu);
  void DrivePhase(std::shared_ptr<ServerSession> entry, std::string id);
  /// Serializes `frame` (+ push/seq/ts_us markers) into the session's bound
  /// connection. Returns whether the frame reached a write queue; frames of
  /// evicted sessions are dropped unless `even_if_evicted` (the eviction
  /// path's own terminal `drained`).
  bool PushFrameLocked(ServerSession* entry, JsonValue frame,
                       bool even_if_evicted = false) REQUIRES(entry->mu);
  /// ProgressSink trampoline. The sink only ever fires inside a Next() /
  /// Finish() call, and every such call site holds the entry's mu — but the
  /// analysis cannot see through the std::function boundary, so the
  /// requirement is asserted here by hand instead of REQUIRES.
  void PushProgress(ServerSession* entry, const std::string& id,
                    const core::ProgressUpdate& update)
      NO_THREAD_SAFETY_ANALYSIS;
  void MarkDrained(const std::shared_ptr<ServerSession>& entry);

  // Admission / eviction.
  bool AdmitOpen() const;
  void AdvanceWheel() EXCLUDES(wheel_mu_);
  void EvictSession(const std::string& id,
                    const std::shared_ptr<ServerSession>& entry)
      EXCLUDES(sessions_mu_);
  static int64_t NowMs();
  static int64_t NowUs();

  // Event loop (one thread).
  void EventLoop();
  void AcceptReady();
  void ReadReady(const std::shared_ptr<Conn>& conn);
  void FlushConn(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void UpdateWriteInterest(const std::shared_ptr<Conn>& conn, bool want);

  // Worker-side plumbing.
  void RunStrand(std::shared_ptr<Conn> conn);
  void EnqueueOutput(const std::shared_ptr<Conn>& conn, std::string frame);
  void MarkDirty(const std::shared_ptr<Conn>& conn);
  void WakeLoop();
  /// Post to the pool unless the server is stopping (drive chains end).
  void PostJob(std::function<void()> job);

  db::Engine* engine_;
  core::SeeDB seedb_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> running_{false};
  std::thread loop_thread_;
  std::unique_ptr<ThreadPool> workers_;

  mutable base::Mutex sessions_mu_;
  std::unordered_map<std::string, std::shared_ptr<ServerSession>> sessions_
      GUARDED_BY(sessions_mu_);
  /// Sessions counted against max_inflight_phases (open, phases left).
  std::atomic<size_t> inflight_sessions_{0};

  /// Loop-owned fd -> connection map; Stop() walks it after the loop joins.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  /// Connections with freshly queued output, handed worker -> loop.
  base::Mutex dirty_mu_;
  std::vector<std::weak_ptr<Conn>> dirty_ GUARDED_BY(dirty_mu_);

  /// Idle-eviction wheel; armed per `open`, advanced by the event loop.
  base::Mutex wheel_mu_;
  TimerWheel wheel_ GUARDED_BY(wheel_mu_);

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> sessions_finished_{0};
  std::atomic<uint64_t> sessions_evicted_{0};
  std::atomic<uint64_t> sessions_rejected_{0};
  std::atomic<uint64_t> push_frames_sent_{0};
};

}  // namespace seedb::server

#endif  // SEEDB_SERVER_SERVER_H_
