// Socket primitives shared by the server and client sides of the wire
// protocol, so framing behavior cannot silently diverge between them.

#ifndef SEEDB_SERVER_NET_UTIL_H_
#define SEEDB_SERVER_NET_UTIL_H_

#include <string>

#include "util/status.h"

namespace seedb::server {

/// IOError carrying errno's message: "what: <strerror>".
Status ErrnoStatus(const std::string& what);

/// Writes the whole buffer, riding out short writes and EINTR. MSG_NOSIGNAL
/// turns a peer that hung up into a false return instead of SIGPIPE.
bool WriteAll(int fd, const std::string& data);

/// Puts the descriptor in non-blocking mode (the event loop's sockets).
Status SetNonBlocking(int fd);

}  // namespace seedb::server

#endif  // SEEDB_SERVER_NET_UTIL_H_
