#include "server/protocol.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/executor.h"
#include "core/metrics.h"
#include "core/online_pruning.h"

namespace seedb::server {
namespace {

Result<core::ExecutionStrategy> ParseStrategy(const std::string& name) {
  if (name == "per-query" || name == "perquery") {
    return core::ExecutionStrategy::kPerQuery;
  }
  if (name == "shared-scan" || name == "shared") {
    return core::ExecutionStrategy::kSharedScan;
  }
  if (name == "phased-shared-scan" || name == "phased") {
    return core::ExecutionStrategy::kPhasedSharedScan;
  }
  return Status::InvalidArgument(
      "unknown strategy '" + name +
      "' (expected per-query|shared-scan|phased-shared-scan)");
}

JsonValue ViewToJson(const core::ProvisionalView& pv) {
  JsonValue v = JsonValue::Object();
  v.Set("view", JsonValue::Str(pv.view.Id()));
  v.Set("dimension", JsonValue::Str(pv.view.dimension));
  v.Set("measure", JsonValue::Str(pv.view.measure));
  v.Set("utility", JsonValue::Number(pv.utility));
  if (std::isfinite(pv.lower)) v.Set("lower", JsonValue::Number(pv.lower));
  if (std::isfinite(pv.upper)) v.Set("upper", JsonValue::Number(pv.upper));
  return v;
}

JsonValue RecommendationToJson(const core::Recommendation& rec) {
  JsonValue v = JsonValue::Object();
  v.Set("rank", JsonValue::Number(static_cast<double>(rec.rank)));
  v.Set("view", JsonValue::Str(rec.view().Id()));
  v.Set("dimension", JsonValue::Str(rec.view().dimension));
  v.Set("measure", JsonValue::Str(rec.view().measure));
  v.Set("utility", JsonValue::Number(rec.utility()));
  v.Set("target_sql", JsonValue::Str(rec.target_sql));
  v.Set("comparison_sql", JsonValue::Str(rec.comparison_sql));
  v.Set("combined_sql", JsonValue::Str(rec.combined_sql));
  return v;
}

RemoteRecommendation RecommendationFromJson(const JsonValue& v) {
  RemoteRecommendation rec;
  rec.rank = static_cast<size_t>(v.GetInt("rank"));
  rec.view_id = v.GetString("view");
  rec.dimension = v.GetString("dimension");
  rec.measure = v.GetString("measure");
  rec.utility = v.GetDouble("utility");
  rec.target_sql = v.GetString("target_sql");
  rec.comparison_sql = v.GetString("comparison_sql");
  rec.combined_sql = v.GetString("combined_sql");
  return rec;
}

}  // namespace

const char* StatusCodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kNotImplemented:
      return "not_implemented";
    case StatusCode::kIOError:
      return "io_error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "busy";
  }
  return "internal";
}

StatusCode StatusCodeFromToken(const std::string& token) {
  if (token == "ok") return StatusCode::kOk;
  if (token == "invalid_argument") return StatusCode::kInvalidArgument;
  if (token == "not_found") return StatusCode::kNotFound;
  if (token == "already_exists") return StatusCode::kAlreadyExists;
  if (token == "out_of_range") return StatusCode::kOutOfRange;
  if (token == "not_implemented") return StatusCode::kNotImplemented;
  if (token == "io_error") return StatusCode::kIOError;
  if (token == "busy") return StatusCode::kUnavailable;
  return StatusCode::kInternal;
}

JsonValue ErrorResponse(const Status& status, const std::string& id) {
  JsonValue v = JsonValue::Object();
  v.Set("ok", JsonValue::Bool(false));
  if (!id.empty()) v.Set("id", JsonValue::Str(id));
  v.Set("error", JsonValue::Str(status.message()));
  v.Set("code", JsonValue::Str(StatusCodeToken(status.code())));
  return v;
}

Status StatusFromErrorResponse(const JsonValue& response) {
  StatusCode code = StatusCodeFromToken(response.GetString("code", "internal"));
  std::string message = response.GetString("error", "server error");
  if (code == StatusCode::kOk) code = StatusCode::kInternal;
  return Status(code, std::move(message));
}

JsonValue HelloRequestToJson(int version,
                             const std::vector<std::string>& capabilities) {
  JsonValue v = JsonValue::Object();
  v.Set("op", JsonValue::Str("hello"));
  v.Set("version", JsonValue::Number(static_cast<double>(version)));
  JsonValue caps = JsonValue::Array();
  for (const std::string& cap : capabilities) caps.Append(JsonValue::Str(cap));
  v.Set("capabilities", std::move(caps));
  return v;
}

Handshake NegotiateHello(const JsonValue& request) {
  Handshake hs;
  int64_t requested = request.GetInt("version", 1);
  if (requested < 1) requested = 1;
  hs.version = static_cast<int>(
      std::min<int64_t>(requested, kProtocolVersion));
  if (hs.version >= 2) {
    if (const JsonValue* caps = request.Find("capabilities");
        caps != nullptr && caps->is_array()) {
      for (const JsonValue& cap : caps->items()) {
        // Only `push` is supported; `binary_frames` and anything unknown are
        // silently dropped from the intersection.
        if (cap.is_string() && cap.AsString() == kCapPush) hs.push = true;
      }
    }
  }
  return hs;
}

JsonValue HelloResponseToJson(const Handshake& handshake) {
  JsonValue v = JsonValue::Object();
  v.Set("ok", JsonValue::Bool(true));
  v.Set("type", JsonValue::Str("hello"));
  v.Set("version", JsonValue::Number(static_cast<double>(handshake.version)));
  JsonValue caps = JsonValue::Array();
  if (handshake.push) caps.Append(JsonValue::Str(kCapPush));
  v.Set("capabilities", std::move(caps));
  return v;
}

Result<Handshake> HandshakeFromJson(const JsonValue& response) {
  if (response.GetString("type") != "hello") {
    return Status::InvalidArgument("not a hello frame: " + response.Dump());
  }
  Handshake hs;
  hs.version = static_cast<int>(response.GetInt("version", 1));
  if (const JsonValue* caps = response.Find("capabilities");
      caps != nullptr && caps->is_array()) {
    for (const JsonValue& cap : caps->items()) {
      if (cap.is_string() && cap.AsString() == kCapPush) hs.push = true;
    }
  }
  return hs;
}

JsonValue OpenRequestToJson(const std::string& id, const OpenSpec& spec) {
  JsonValue v = JsonValue::Object();
  v.Set("op", JsonValue::Str("open"));
  v.Set("id", JsonValue::Str(id));
  if (!spec.sql.empty()) v.Set("sql", JsonValue::Str(spec.sql));
  if (!spec.table.empty()) v.Set("table", JsonValue::Str(spec.table));
  if (spec.k > 0) v.Set("k", JsonValue::Number(static_cast<double>(spec.k)));
  if (spec.bottom_k > 0) {
    v.Set("bottom_k", JsonValue::Number(static_cast<double>(spec.bottom_k)));
  }
  if (!spec.metric.empty()) v.Set("metric", JsonValue::Str(spec.metric));
  if (!spec.strategy.empty()) v.Set("strategy", JsonValue::Str(spec.strategy));
  if (spec.phases > 0) {
    v.Set("phases", JsonValue::Number(static_cast<double>(spec.phases)));
  }
  if (!spec.pruner.empty()) v.Set("pruner", JsonValue::Str(spec.pruner));
  if (spec.early_stop > 0) {
    v.Set("early_stop",
          JsonValue::Number(static_cast<double>(spec.early_stop)));
  }
  if (spec.delta >= 0.0) v.Set("delta", JsonValue::Number(spec.delta));
  if (spec.utility_range >= 0.0) {
    v.Set("utility_range", JsonValue::Number(spec.utility_range));
  }
  if (spec.memory_budget > 0) {
    v.Set("memory_budget",
          JsonValue::Number(static_cast<double>(spec.memory_budget)));
  }
  if (spec.parallelism > 0) {
    v.Set("parallelism",
          JsonValue::Number(static_cast<double>(spec.parallelism)));
  }
  if (spec.trace) v.Set("trace", JsonValue::Bool(true));
  return v;
}

Result<core::SeeDBRequest> OpenRequestFromJson(const JsonValue& request) {
  const std::string sql = request.GetString("sql");
  const std::string table = request.GetString("table");
  std::optional<core::SeeDBRequest> req;
  if (!sql.empty()) {
    SEEDB_ASSIGN_OR_RETURN(core::SeeDBRequest parsed,
                           core::SeeDBRequest::FromSql(sql));
    req.emplace(std::move(parsed));
  } else if (!table.empty()) {
    req.emplace(table);
  } else {
    return Status::InvalidArgument("open needs \"sql\" or \"table\"");
  }

  if (const JsonValue* k = request.Find("k"); k != nullptr) {
    if (!k->is_number() || k->AsInt() < 1) {
      return Status::InvalidArgument("\"k\" must be a positive number");
    }
    req->WithTopK(static_cast<size_t>(k->AsInt()));
  }
  if (int64_t bottom_k = request.GetInt("bottom_k"); bottom_k > 0) {
    req->WithBottomK(static_cast<size_t>(bottom_k));
  }
  if (const std::string metric = request.GetString("metric"); !metric.empty()) {
    SEEDB_ASSIGN_OR_RETURN(core::DistanceMetric m,
                           core::ParseDistanceMetric(metric));
    req->WithMetric(m);
  }
  if (const std::string strategy = request.GetString("strategy");
      !strategy.empty()) {
    SEEDB_ASSIGN_OR_RETURN(core::ExecutionStrategy s, ParseStrategy(strategy));
    req->WithStrategy(s);
  }
  if (int64_t phases = request.GetInt("phases"); phases > 0) {
    req->WithPhases(static_cast<size_t>(phases));
  }
  if (const std::string pruner = request.GetString("pruner"); !pruner.empty()) {
    SEEDB_ASSIGN_OR_RETURN(core::OnlinePruner p,
                           core::ParseOnlinePruner(pruner));
    req->WithOnlinePruner(p);
  }
  if (int64_t early_stop = request.GetInt("early_stop"); early_stop > 0) {
    req->WithEarlyStop(static_cast<size_t>(early_stop));
  }
  // The Hoeffding knobs have no fluent setter (they are expert-only);
  // rebuild the options payload for them.
  const JsonValue* delta = request.Find("delta");
  const JsonValue* range = request.Find("utility_range");
  if (delta != nullptr || range != nullptr) {
    core::SeeDBOptions options = req->options();
    if (delta != nullptr && delta->is_number()) {
      options.online_pruning.delta = delta->AsDouble();
    }
    if (range != nullptr && range->is_number()) {
      options.online_pruning.utility_range = range->AsDouble();
    }
    req->WithOptions(options);
  }
  if (int64_t budget = request.GetInt("memory_budget"); budget > 0) {
    req->WithMemoryBudget(static_cast<size_t>(budget));
  }
  if (int64_t parallelism = request.GetInt("parallelism"); parallelism > 0) {
    req->WithParallelism(static_cast<size_t>(parallelism));
  }
  if (request.GetBool("trace")) req->WithTrace(true);
  return std::move(*req);
}

JsonValue MetricsRequestToJson() {
  JsonValue v = JsonValue::Object();
  v.Set("op", JsonValue::Str("metrics"));
  return v;
}

JsonValue MetricsToJson(const obs::Snapshot& snapshot) {
  JsonValue v = JsonValue::Object();
  v.Set("ok", JsonValue::Bool(true));
  v.Set("type", JsonValue::Str("metrics"));
  JsonValue counters = JsonValue::Object();
  for (const obs::CounterValue& c : snapshot.counters) {
    counters.Set(c.name, JsonValue::Number(static_cast<double>(c.value)));
  }
  v.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const obs::GaugeValue& g : snapshot.gauges) {
    gauges.Set(g.name, JsonValue::Number(static_cast<double>(g.value)));
  }
  v.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::Object();
  for (const obs::HistogramValue& h : snapshot.histograms) {
    const obs::HistogramSnapshot& s = h.snapshot;
    JsonValue hist = JsonValue::Object();
    hist.Set("count", JsonValue::Number(static_cast<double>(s.count)));
    hist.Set("sum_us", JsonValue::Number(static_cast<double>(s.sum_us)));
    hist.Set("mean_us", JsonValue::Number(s.MeanUs()));
    hist.Set("p50_us",
             JsonValue::Number(static_cast<double>(s.QuantileUs(0.50))));
    hist.Set("p95_us",
             JsonValue::Number(static_cast<double>(s.QuantileUs(0.95))));
    hist.Set("p99_us",
             JsonValue::Number(static_cast<double>(s.QuantileUs(0.99))));
    JsonValue bounds = JsonValue::Array();
    JsonValue counts = JsonValue::Array();
    for (size_t b = 0; b < obs::kHistogramBuckets; ++b) {
      bounds.Append(JsonValue::Number(
          static_cast<double>(obs::BucketUpperBoundUs(b))));
      counts.Append(JsonValue::Number(static_cast<double>(s.buckets[b])));
    }
    hist.Set("bucket_le_us", std::move(bounds));
    hist.Set("bucket_counts", std::move(counts));
    histograms.Set(h.name, std::move(hist));
  }
  v.Set("histograms", std::move(histograms));
  return v;
}

JsonValue ProgressToJson(const std::string& id,
                         const core::ProgressUpdate& update) {
  JsonValue v = JsonValue::Object();
  v.Set("ok", JsonValue::Bool(true));
  v.Set("id", JsonValue::Str(id));
  v.Set("type", JsonValue::Str("progress"));
  v.Set("phase", JsonValue::Number(static_cast<double>(update.phase)));
  v.Set("total_phases",
        JsonValue::Number(static_cast<double>(update.total_phases)));
  v.Set("phase_seconds", JsonValue::Number(update.phase_seconds));
  v.Set("rows_scanned",
        JsonValue::Number(static_cast<double>(update.rows_scanned)));
  v.Set("total_rows",
        JsonValue::Number(static_cast<double>(update.total_rows)));
  v.Set("views_active",
        JsonValue::Number(static_cast<double>(update.views_active)));
  v.Set("views_pruned",
        JsonValue::Number(static_cast<double>(update.views_pruned_online)));
  if (std::isfinite(update.ci_half_width)) {
    v.Set("ci_half_width", JsonValue::Number(update.ci_half_width));
  }
  v.Set("memory_bytes",
        JsonValue::Number(static_cast<double>(update.memory_bytes)));
  if (update.early_stopped) v.Set("early_stopped", JsonValue::Bool(true));
  if (update.cancelled) v.Set("cancelled", JsonValue::Bool(true));
  JsonValue top = JsonValue::Array();
  for (const core::ProvisionalView& pv : update.top_views) {
    top.Append(ViewToJson(pv));
  }
  v.Set("top", std::move(top));
  return v;
}

Result<RemoteProgress> ProgressFromJson(const JsonValue& frame) {
  if (frame.GetString("type") != "progress") {
    return Status::InvalidArgument("not a progress frame: " + frame.Dump());
  }
  RemoteProgress p;
  p.phase = static_cast<size_t>(frame.GetInt("phase"));
  p.total_phases = static_cast<size_t>(frame.GetInt("total_phases"));
  p.phase_seconds = frame.GetDouble("phase_seconds");
  p.rows_scanned = static_cast<uint64_t>(frame.GetInt("rows_scanned"));
  p.total_rows = static_cast<uint64_t>(frame.GetInt("total_rows"));
  p.views_active = static_cast<size_t>(frame.GetInt("views_active"));
  p.views_pruned = static_cast<size_t>(frame.GetInt("views_pruned"));
  p.ci_half_width = frame.GetDouble(
      "ci_half_width", std::numeric_limits<double>::infinity());
  p.memory_bytes = static_cast<uint64_t>(frame.GetInt("memory_bytes"));
  p.early_stopped = frame.GetBool("early_stopped");
  p.cancelled = frame.GetBool("cancelled");
  if (const JsonValue* top = frame.Find("top");
      top != nullptr && top->is_array()) {
    const double inf = std::numeric_limits<double>::infinity();
    for (const JsonValue& item : top->items()) {
      RemoteView view;
      view.id = item.GetString("view");
      view.dimension = item.GetString("dimension");
      view.measure = item.GetString("measure");
      view.utility = item.GetDouble("utility");
      view.lower = item.GetDouble("lower", -inf);
      view.upper = item.GetDouble("upper", inf);
      p.top.push_back(std::move(view));
    }
  }
  return p;
}

JsonValue ResultToJson(const std::string& id,
                       const core::RecommendationSet& set) {
  JsonValue v = JsonValue::Object();
  v.Set("ok", JsonValue::Bool(true));
  v.Set("id", JsonValue::Str(id));
  v.Set("type", JsonValue::Str("result"));
  v.Set("metric", JsonValue::Str(core::DistanceMetricToString(set.metric)));
  JsonValue top = JsonValue::Array();
  for (const core::Recommendation& rec : set.top_views) {
    top.Append(RecommendationToJson(rec));
  }
  v.Set("top", std::move(top));
  if (!set.low_utility_views.empty()) {
    JsonValue low = JsonValue::Array();
    for (const core::Recommendation& rec : set.low_utility_views) {
      low.Append(RecommendationToJson(rec));
    }
    v.Set("low", std::move(low));
  }
  if (!set.online_pruned_views.empty()) {
    JsonValue pruned = JsonValue::Array();
    for (const core::OnlinePrunedView& pv : set.online_pruned_views) {
      JsonValue item = JsonValue::Object();
      item.Set("view", JsonValue::Str(pv.view.Id()));
      item.Set("partial_utility", JsonValue::Number(pv.partial_utility));
      item.Set("pruned_at_phase",
               JsonValue::Number(static_cast<double>(pv.pruned_at_phase)));
      item.Set("rows_seen",
               JsonValue::Number(static_cast<double>(pv.rows_seen)));
      pruned.Append(std::move(item));
    }
    v.Set("pruned_online", std::move(pruned));
  }
  const core::ExecutionProfile& prof = set.profile;
  JsonValue profile = JsonValue::Object();
  profile.Set("views_enumerated",
              JsonValue::Number(static_cast<double>(prof.views_enumerated)));
  profile.Set("views_pruned",
              JsonValue::Number(static_cast<double>(prof.views_pruned)));
  profile.Set("views_executed",
              JsonValue::Number(static_cast<double>(prof.views_executed)));
  profile.Set(
      "views_pruned_online",
      JsonValue::Number(static_cast<double>(prof.views_pruned_online)));
  profile.Set(
      "examined_view_count",
      JsonValue::Number(static_cast<double>(prof.examined_view_count)));
  profile.Set("phases_executed",
              JsonValue::Number(static_cast<double>(prof.phases_executed)));
  profile.Set("queries_issued",
              JsonValue::Number(static_cast<double>(prof.queries_issued)));
  profile.Set("table_scans",
              JsonValue::Number(static_cast<double>(prof.table_scans)));
  profile.Set("rows_scanned",
              JsonValue::Number(static_cast<double>(prof.rows_scanned)));
  profile.Set("cache_hits",
              JsonValue::Number(static_cast<double>(prof.cache_hits)));
  profile.Set("cache_misses",
              JsonValue::Number(static_cast<double>(prof.cache_misses)));
  profile.Set("early_stopped", JsonValue::Bool(prof.early_stopped));
  profile.Set("cancelled", JsonValue::Bool(prof.cancelled));
  profile.Set("budget_exceeded", JsonValue::Bool(prof.budget_exceeded));
  v.Set("profile", std::move(profile));
  return v;
}

Result<RemoteResult> ResultFromJson(const JsonValue& frame) {
  if (frame.GetString("type") != "result") {
    return Status::InvalidArgument("not a result frame: " + frame.Dump());
  }
  RemoteResult result;
  result.metric = frame.GetString("metric");
  if (const JsonValue* top = frame.Find("top");
      top != nullptr && top->is_array()) {
    for (const JsonValue& item : top->items()) {
      result.top.push_back(RecommendationFromJson(item));
    }
  }
  if (const JsonValue* low = frame.Find("low");
      low != nullptr && low->is_array()) {
    for (const JsonValue& item : low->items()) {
      result.low.push_back(RecommendationFromJson(item));
    }
  }
  if (const JsonValue* pruned = frame.Find("pruned_online");
      pruned != nullptr && pruned->is_array()) {
    for (const JsonValue& item : pruned->items()) {
      RemotePrunedView pv;
      pv.view_id = item.GetString("view");
      pv.partial_utility = item.GetDouble("partial_utility");
      pv.pruned_at_phase = static_cast<size_t>(item.GetInt("pruned_at_phase"));
      pv.rows_seen = static_cast<uint64_t>(item.GetInt("rows_seen"));
      result.pruned_online.push_back(std::move(pv));
    }
  }
  if (const JsonValue* profile = frame.Find("profile");
      profile != nullptr && profile->is_object()) {
    RemoteProfile& p = result.profile;
    p.views_enumerated =
        static_cast<size_t>(profile->GetInt("views_enumerated"));
    p.views_pruned = static_cast<size_t>(profile->GetInt("views_pruned"));
    p.views_executed = static_cast<size_t>(profile->GetInt("views_executed"));
    p.views_pruned_online =
        static_cast<size_t>(profile->GetInt("views_pruned_online"));
    p.examined_view_count =
        static_cast<size_t>(profile->GetInt("examined_view_count"));
    p.phases_executed =
        static_cast<size_t>(profile->GetInt("phases_executed"));
    p.queries_issued = static_cast<size_t>(profile->GetInt("queries_issued"));
    p.table_scans = static_cast<size_t>(profile->GetInt("table_scans"));
    p.rows_scanned = static_cast<uint64_t>(profile->GetInt("rows_scanned"));
    p.cache_hits = static_cast<uint64_t>(profile->GetInt("cache_hits"));
    p.cache_misses = static_cast<uint64_t>(profile->GetInt("cache_misses"));
    p.early_stopped = profile->GetBool("early_stopped");
    p.cancelled = profile->GetBool("cancelled");
    p.budget_exceeded = profile->GetBool("budget_exceeded");
  }
  return result;
}

Result<RemoteStatus> StatusFromJson(const JsonValue& frame) {
  if (frame.GetString("type") != "status") {
    return Status::InvalidArgument("not a status frame: " + frame.Dump());
  }
  RemoteStatus status;
  status.session = frame.GetBool("session");
  status.done = frame.GetBool("done");
  status.cancelled = frame.GetBool("cancelled");
  status.budget_exceeded = frame.GetBool("budget_exceeded");
  status.phases_run = static_cast<size_t>(frame.GetInt("phases_run"));
  status.memory_bytes = static_cast<uint64_t>(frame.GetInt("memory_bytes"));
  status.sessions = static_cast<size_t>(frame.GetInt("sessions"));
  status.requests = static_cast<uint64_t>(frame.GetInt("requests"));
  status.cache_enabled = frame.GetBool("cache_enabled");
  status.cache_hits = static_cast<uint64_t>(frame.GetInt("cache_hits"));
  status.cache_misses = static_cast<uint64_t>(frame.GetInt("cache_misses"));
  status.cache_bytes = static_cast<uint64_t>(frame.GetInt("cache_bytes"));
  status.cache_evictions =
      static_cast<uint64_t>(frame.GetInt("cache_evictions"));
  return status;
}

}  // namespace seedb::server
