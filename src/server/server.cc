#include "server/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "server/net_util.h"
#include "server/protocol.h"

namespace seedb::server {

RecommendationServer::RecommendationServer(db::Engine* engine,
                                           ServerOptions options)
    : engine_(engine), seedb_(engine), options_(std::move(options)) {}

RecommendationServer::~RecommendationServer() { Stop(); }

Status RecommendationServer::Start() {
  if (running_.load()) return Status::Internal("server already started");
  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_path);
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return ErrnoStatus("socket(AF_UNIX)");
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());  // stale socket from a prior run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      Status s = ErrnoStatus("bind(" + options_.unix_path + ")");
      ::close(listen_fd_);
      listen_fd_ = -1;
      return s;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return ErrnoStatus("socket(AF_INET)");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      Status s = ErrnoStatus("bind(127.0.0.1:" + std::to_string(options_.tcp_port) +
                       ")");
      ::close(listen_fd_);
      listen_fd_ = -1;
      return s;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status s = ErrnoStatus("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void RecommendationServer::Stop() {
  if (!running_.exchange(false)) {
    // Never started (or already stopped): nothing to unwind beyond a
    // possibly half-open listener.
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  // Expedite in-flight phases: flip every session's cancel token so a long
  // scan stops at the next morsel instead of holding up shutdown.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [id, session] : sessions_) session->session.Cancel();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  // The accept thread is gone, so conns_ can no longer grow and no reaper
  // runs concurrently: wake every live reader, join, close, drop.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) ::shutdown(conn->fd, SHUT_RDWR);
  }
  std::vector<std::unique_ptr<Connection>> remaining;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    remaining.swap(conns_);
  }
  for (auto& conn : remaining) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.clear();
}

ServerStats RecommendationServer::stats() const {
  ServerStats s;
  s.connections = connections_.load();
  s.requests = requests_.load();
  s.errors = errors_.load();
  s.sessions_opened = sessions_opened_.load();
  s.sessions_finished = sessions_finished_.load();
  return s;
}

size_t RecommendationServer::open_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

void RecommendationServer::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->done.load(std::memory_order_acquire)) {
        dead.push_back(std::move(conn));
      }
    }
    std::erase_if(conns_, [](const std::unique_ptr<Connection>& conn) {
      return conn == nullptr;
    });
  }
  for (auto& conn : dead) {
    conn->thread.join();  // the reader already exited; this returns at once
    ::close(conn->fd);
  }
}

void RecommendationServer::AcceptLoop() {
  while (running_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (!running_.load()) break;
    // Reap disconnected clients between accepts, so a long-lived server
    // serving many short connections does not accumulate fds and exited
    // threads until Stop().
    ReapFinishedConnections();
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_.fetch_add(1);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
  }
}

void RecommendationServer::ConnectionLoop(Connection* conn) {
  const int fd = conn->fd;
  std::string buffer;
  char chunk[4096];
  while (running_.load()) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    size_t newline;
    while ((newline = buffer.find('\n', start)) != std::string::npos) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response = HandleLine(line);
      response.push_back('\n');
      if (!WriteAll(fd, response)) {
        buffer.clear();
        start = 0;
        break;
      }
    }
    buffer.erase(0, start);
    if (buffer.size() > options_.max_line_bytes) {
      // A request line that long is hostile or broken either way; answer
      // once and drop the connection rather than buffering without bound.
      std::string response =
          ErrorResponse(Status::InvalidArgument("request line too long"), "")
              .Dump();
      response.push_back('\n');
      WriteAll(fd, response);
      break;
    }
  }
  // Closing the fd here would race a concurrent Stop() shutting the same
  // descriptor; instead flag the entry and let whoever owns it next — the
  // accept loop's reaper, or Stop() — join and close it.
  conn->done.store(true, std::memory_order_release);
}

std::string RecommendationServer::HandleLine(const std::string& line) {
  requests_.fetch_add(1);
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    errors_.fetch_add(1);
    return ErrorResponse(parsed.status(), "").Dump();
  }
  if (!parsed->is_object()) {
    errors_.fetch_add(1);
    return ErrorResponse(
               Status::InvalidArgument("request must be a JSON object"), "")
        .Dump();
  }
  JsonValue response = Dispatch(*parsed);
  if (!response.GetBool("ok")) errors_.fetch_add(1);
  return response.Dump();
}

JsonValue RecommendationServer::Dispatch(const JsonValue& request) {
  const std::string op = request.GetString("op");
  const std::string id = request.GetString("id");
  if (op.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("missing \"op\" (expected "
                                "open|next|cancel|resume|finish|status)"),
        id);
  }
  if (op == "status") return HandleStatus(id);
  if (id.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("op \"" + op + "\" needs a session \"id\""),
        id);
  }
  if (op == "open") return HandleOpen(id, request);
  if (op == "next") return HandleNext(id);
  if (op == "cancel") return HandleCancel(id);
  if (op == "resume") return HandleResume(id);
  if (op == "finish") return HandleFinish(id);
  return ErrorResponse(Status::InvalidArgument("unknown op \"" + op + "\""),
                       id);
}

std::shared_ptr<RecommendationServer::ServerSession>
RecommendationServer::FindSession(const std::string& id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

JsonValue RecommendationServer::HandleOpen(const std::string& id,
                                           const JsonValue& request) {
  Result<core::SeeDBRequest> parsed = OpenRequestFromJson(request);
  if (!parsed.ok()) return ErrorResponse(parsed.status(), id);
  {
    // Early refusal so an over-limit or duplicate open skips the planning
    // work; the authoritative checks repeat at insert time below.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (sessions_.count(id) > 0) {
      return ErrorResponse(
          Status::AlreadyExists("session \"" + id + "\" already open"), id);
    }
    if (sessions_.size() >= options_.max_sessions) {
      return ErrorResponse(
          Status::OutOfRange("server session limit reached (" +
                             std::to_string(options_.max_sessions) + ")"),
          id);
    }
  }
  // Planning runs outside the registry lock — it scans catalog statistics
  // and may take a while. Racing opens all plan; the losers are refused at
  // insert, where the duplicate-id and session-cap checks are re-run under
  // the same lock acquisition that inserts.
  Result<core::RecommendationSession> session = seedb_.Open(*parsed);
  if (!session.ok()) return ErrorResponse(session.status(), id);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (sessions_.size() >= options_.max_sessions) {
      return ErrorResponse(
          Status::OutOfRange("server session limit reached (" +
                             std::to_string(options_.max_sessions) + ")"),
          id);
    }
    auto [it, inserted] = sessions_.emplace(
        id, std::make_shared<ServerSession>(std::move(*session)));
    if (!inserted) {
      return ErrorResponse(
          Status::AlreadyExists("session \"" + id + "\" already open"), id);
    }
  }
  sessions_opened_.fetch_add(1);
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(true));
  response.Set("id", JsonValue::Str(id));
  response.Set("type", JsonValue::Str("opened"));
  return response;
}

JsonValue RecommendationServer::HandleNext(const std::string& id) {
  std::shared_ptr<ServerSession> entry = FindSession(id);
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound("unknown session \"" + id + "\""),
                         id);
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  Result<std::optional<core::ProgressUpdate>> update = entry->session.Next();
  if (!update.ok()) return ErrorResponse(update.status(), id);
  if (!update->has_value()) {
    JsonValue response = JsonValue::Object();
    response.Set("ok", JsonValue::Bool(true));
    response.Set("id", JsonValue::Str(id));
    response.Set("type", JsonValue::Str("drained"));
    return response;
  }
  return ProgressToJson(id, **update);
}

JsonValue RecommendationServer::HandleCancel(const std::string& id) {
  std::shared_ptr<ServerSession> entry = FindSession(id);
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound("unknown session \"" + id + "\""),
                         id);
  }
  // No session lock: Cancel only flips the shared atomic token, which is
  // exactly how a cancel reaches a Next() in flight on another connection.
  entry->session.Cancel();
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(true));
  response.Set("id", JsonValue::Str(id));
  response.Set("type", JsonValue::Str("ack"));
  return response;
}

JsonValue RecommendationServer::HandleResume(const std::string& id) {
  std::shared_ptr<ServerSession> entry = FindSession(id);
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound("unknown session \"" + id + "\""),
                         id);
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->finished) {
    return ErrorResponse(
        Status::NotFound("session \"" + id + "\" already finished"), id);
  }
  Status resumed = entry->session.Resume();
  if (!resumed.ok()) return ErrorResponse(resumed, id);
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(true));
  response.Set("id", JsonValue::Str(id));
  response.Set("type", JsonValue::Str("ack"));
  return response;
}

JsonValue RecommendationServer::HandleFinish(const std::string& id) {
  std::shared_ptr<ServerSession> entry = FindSession(id);
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound("unknown session \"" + id + "\""),
                         id);
  }
  JsonValue response;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->finished) {
      return ErrorResponse(
          Status::NotFound("session \"" + id + "\" already finished"), id);
    }
    entry->finished = true;
    Result<core::RecommendationSet> set = entry->session.Finish();
    response = set.ok() ? ResultToJson(id, *set)
                        : ErrorResponse(set.status(), id);
  }
  // The id is gone either way — a failed Finish() leaves no session worth
  // keeping, and later ops on it answer not_found.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.erase(id);
  }
  sessions_finished_.fetch_add(1);
  return response;
}

JsonValue RecommendationServer::HandleStatus(const std::string& id) {
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(true));
  if (!id.empty()) response.Set("id", JsonValue::Str(id));
  response.Set("type", JsonValue::Str("status"));
  if (id.empty()) {
    response.Set("sessions",
                 JsonValue::Number(static_cast<double>(open_sessions())));
    response.Set("requests",
                 JsonValue::Number(static_cast<double>(requests_.load())));
    return response;
  }
  std::shared_ptr<ServerSession> entry = FindSession(id);
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound("unknown session \"" + id + "\""),
                         id);
  }
  // Locked: phases_run / memory_bytes read execution state a concurrent
  // Next() mutates.
  std::lock_guard<std::mutex> lock(entry->mu);
  response.Set("session", JsonValue::Bool(true));
  response.Set("done", JsonValue::Bool(entry->session.done()));
  response.Set("cancelled", JsonValue::Bool(entry->session.cancelled()));
  response.Set("budget_exceeded",
               JsonValue::Bool(entry->session.budget_exceeded()));
  response.Set("phases_run",
               JsonValue::Number(
                   static_cast<double>(entry->session.phases_run())));
  response.Set("memory_bytes",
               JsonValue::Number(
                   static_cast<double>(entry->session.memory_bytes())));
  return response;
}

}  // namespace seedb::server
