#include "server/server.h"

#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/net_util.h"

namespace seedb::server {
namespace {

/// Per-request-type wall-time histogram ("server.request.<op>_us") and a
/// string-literal span name for the dispatch trace — looked up once, cached
/// for the life of the process. Unknown / unnamed ops return {nullptr,
/// nullptr}: still counted by requests_, just not histogrammed.
struct OpInstruments {
  obs::Histogram* latency = nullptr;
  const char* span_name = nullptr;
};

OpInstruments InstrumentsForOp(const std::string& op) {
  obs::Registry& reg = obs::Registry::Global();
  static obs::Histogram* open_us =
      reg.GetHistogram("server.request.open_us");
  static obs::Histogram* next_us =
      reg.GetHistogram("server.request.next_us");
  static obs::Histogram* cancel_us =
      reg.GetHistogram("server.request.cancel_us");
  static obs::Histogram* resume_us =
      reg.GetHistogram("server.request.resume_us");
  static obs::Histogram* finish_us =
      reg.GetHistogram("server.request.finish_us");
  if (op == "open") return {open_us, "server.open"};
  if (op == "next") return {next_us, "server.next"};
  if (op == "cancel") return {cancel_us, "server.cancel"};
  if (op == "resume") return {resume_us, "server.resume"};
  if (op == "finish") return {finish_us, "server.finish"};
  return {};
}

/// Wheel granularity for a given idle timeout: fine enough that eviction
/// lands within ~a quarter of the timeout, never busier than 10ms ticks.
uint64_t EvictionTick(uint64_t idle_timeout_ms) {
  if (idle_timeout_ms == 0) return 100;
  return std::clamp<uint64_t>(idle_timeout_ms / 4, 10, 100);
}

/// The hint a `busy` rejection carries: when to retry the `open`.
constexpr int kRetryAfterMs = 100;

}  // namespace

RecommendationServer::RecommendationServer(db::Engine* engine,
                                           ServerOptions options)
    : engine_(engine),
      seedb_(engine),
      options_(std::move(options)),
      wheel_(EvictionTick(options_.session_idle_timeout_ms)) {}

RecommendationServer::~RecommendationServer() { Stop(); }

int64_t RecommendationServer::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t RecommendationServer::NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status RecommendationServer::Start() {
  if (running_.load()) return Status::Internal("server already started");
  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_path);
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return ErrnoStatus("socket(AF_UNIX)");
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());  // stale socket from a prior run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      Status s = ErrnoStatus("bind(" + options_.unix_path + ")");
      ::close(listen_fd_);
      listen_fd_ = -1;
      return s;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return ErrnoStatus("socket(AF_INET)");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      Status s = ErrnoStatus("bind(127.0.0.1:" +
                             std::to_string(options_.tcp_port) + ")");
      ::close(listen_fd_);
      listen_fd_ = -1;
      return s;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      port_ = ntohs(bound.sin_port);
    }
  }
  Status nonblock = SetNonBlocking(listen_fd_);
  if (!nonblock.ok() || ::listen(listen_fd_, 256) != 0) {
    Status s = nonblock.ok() ? ErrnoStatus("listen") : nonblock;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status s = ErrnoStatus(epoll_fd_ < 0 ? "epoll_create1" : "eventfd");
    Stop();
    return s;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  size_t threads = options_.worker_threads;
  if (threads == 0) {
    threads = std::clamp<size_t>(std::thread::hardware_concurrency(), 2, 8);
  }
  workers_ = std::make_unique<ThreadPool>(threads);
  running_.store(true);
  loop_thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void RecommendationServer::Stop() {
  if (!running_.exchange(false)) {
    // Never started (or already stopped): nothing to unwind beyond
    // possibly half-open descriptors.
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return;
  }
  // Expedite in-flight phases: flip every session's cancel token so a long
  // scan stops at the next morsel instead of holding up shutdown. This also
  // ends push-driver chains — a cancelled session drains on its next phase
  // job, and PostJob refuses re-enqueues once running_ is false.
  {
    base::MutexLock lock(&sessions_mu_);
    for (auto& [id, session] : sessions_) session->session.Cancel();
  }
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Drains queued handler / phase jobs; their output lands in outboxes the
  // (now dead) loop never flushes, which is fine at shutdown.
  workers_.reset();
  for (auto& [fd, conn] : conns_) {
    conn->closed.store(true, std::memory_order_release);
    ::close(fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  base::MutexLock lock(&sessions_mu_);
  sessions_.clear();
  inflight_sessions_.store(0);
}

ServerStats RecommendationServer::stats() const {
  ServerStats s;
  s.connections = connections_.load();
  s.requests = requests_.load();
  s.errors = errors_.load();
  s.sessions_opened = sessions_opened_.load();
  s.sessions_finished = sessions_finished_.load();
  s.sessions_evicted = sessions_evicted_.load();
  s.sessions_rejected = sessions_rejected_.load();
  s.push_frames_sent = push_frames_sent_.load();
  return s;
}

size_t RecommendationServer::open_sessions() const {
  base::MutexLock lock(&sessions_mu_);
  return sessions_.size();
}

// --- Event loop -----------------------------------------------------------

void RecommendationServer::EventLoop() {
  const int timeout_ms =
      options_.session_idle_timeout_ms > 0
          ? static_cast<int>(std::min<uint64_t>(wheel_.tick_ms(), 100))
          : 100;
  std::vector<epoll_event> events(128);
  // Tick lag: how long each loop iteration spends servicing events before
  // it can block in epoll again — the time a freshly readable connection
  // can wait for the loop's attention.
  static obs::Histogram* tick_lag =
      obs::Registry::Global().GetHistogram("server.loop.tick_lag_us");
  while (running_.load()) {
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), timeout_ms);
    if (!running_.load()) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    obs::ScopedTimer tick_timer(tick_lag);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t buf;
        while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<Conn> conn = it->second;
      if (ev & (EPOLLERR | EPOLLHUP)) {
        CloseConn(conn);
        continue;
      }
      if (ev & EPOLLIN) ReadReady(conn);
      if (conn->closed.load(std::memory_order_acquire)) continue;
      if (ev & EPOLLOUT) FlushConn(conn);
    }
    // Output queued by workers since the last pass.
    std::vector<std::weak_ptr<Conn>> dirty;
    {
      base::MutexLock lock(&dirty_mu_);
      dirty.swap(dirty_);
    }
    for (auto& weak : dirty) {
      if (std::shared_ptr<Conn> conn = weak.lock();
          conn != nullptr && !conn->closed.load(std::memory_order_acquire)) {
        FlushConn(conn);
      }
    }
    if (options_.session_idle_timeout_ms > 0) AdvanceWheel();
  }
}

void RecommendationServer::AcceptReady() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: accepted everything pending
    }
    connections_.fetch_add(1);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_[fd] = std::move(conn);
  }
}

void RecommendationServer::ReadReady(const std::shared_ptr<Conn>& conn) {
  char chunk[16384];
  bool eof = false;
  while (true) {
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->rbuf.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    eof = true;  // hard error: treat as hangup
    break;
  }
  // Frame complete lines into the strand's queue.
  std::vector<std::string> fresh;
  size_t start = 0;
  size_t newline;
  while ((newline = conn->rbuf.find('\n', start)) != std::string::npos) {
    std::string line = conn->rbuf.substr(start, newline - start);
    start = newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) fresh.push_back(std::move(line));
  }
  conn->rbuf.erase(0, start);
  bool schedule = false;
  if (!fresh.empty()) {
    base::MutexLock lock(&conn->mu);
    for (std::string& line : fresh) conn->lines.push_back(std::move(line));
    if (!conn->strand_scheduled) {
      conn->strand_scheduled = true;
      schedule = true;
    }
  }
  if (schedule) {
    PostJob([this, conn] { RunStrand(conn); });
  }
  if (conn->rbuf.size() > options_.max_line_bytes) {
    // A request line that long is hostile or broken either way; answer
    // once and drop the connection rather than buffering without bound.
    std::string response =
        ErrorResponse(Status::InvalidArgument("request line too long"), "")
            .Dump();
    response.push_back('\n');
    {
      base::MutexLock lock(&conn->mu);
      conn->outbox += response;
      conn->close_after_flush = true;
    }
    ::shutdown(conn->fd, SHUT_RD);
    conn->read_shut = true;
    FlushConn(conn);
    return;
  }
  if (eof) {
    bool pending;
    {
      base::MutexLock lock(&conn->mu);
      pending = !conn->outbox.empty() || !conn->lines.empty() ||
                conn->strand_scheduled;
      if (pending) conn->close_after_flush = true;
    }
    if (!pending) {
      CloseConn(conn);
    } else {
      // Half-close: stop reading, deliver the remaining responses, then
      // close once the strand and outbox drain.
      conn->read_shut = true;
      UpdateWriteInterest(conn, conn->want_write);
    }
  }
}

void RecommendationServer::FlushConn(const std::shared_ptr<Conn>& conn) {
  bool close_now = false;
  bool want = false;
  {
    base::MutexLock lock(&conn->mu);
    size_t off = 0;
    while (off < conn->outbox.size()) {
      ssize_t n = ::send(conn->fd, conn->outbox.data() + off,
                         conn->outbox.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_now = true;  // peer gone or socket error
      break;
    }
    conn->outbox.erase(0, off);
    if (conn->outbox.empty() && conn->outbox_since_us != 0) {
      // Queue fully drained: the oldest queued frame waited this long
      // between enqueue and its last byte entering the socket buffer.
      static obs::Histogram* flush_us =
          obs::Registry::Global().GetHistogram("server.outbox.flush_us");
      flush_us->Observe(static_cast<uint64_t>(NowUs()) -
                        conn->outbox_since_us);
      conn->outbox_since_us = 0;
    }
    if (conn->overflowed) close_now = true;
    if (!close_now && conn->outbox.empty() && conn->close_after_flush &&
        conn->lines.empty() && !conn->strand_scheduled) {
      close_now = true;
    }
    want = !close_now && !conn->outbox.empty();
  }
  if (close_now) {
    CloseConn(conn);
    return;
  }
  UpdateWriteInterest(conn, want);
}

void RecommendationServer::UpdateWriteInterest(
    const std::shared_ptr<Conn>& conn, bool want) {
  if (want == conn->want_write && !conn->read_shut) return;
  conn->want_write = want;
  epoll_event ev{};
  ev.events = (conn->read_shut ? 0u : static_cast<uint32_t>(EPOLLIN)) |
              (want ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void RecommendationServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  // Push sessions bound to this connection are NOT torn down here: the
  // phase driver notices the dead connection on its next phase, cancels the
  // session, and leaves it in the registry — resumable from a reconnect,
  // evictable by the wheel.
}

// --- Worker-side plumbing -------------------------------------------------

void RecommendationServer::PostJob(std::function<void()> job) {
  if (!running_.load(std::memory_order_acquire) || workers_ == nullptr) return;
  workers_->Submit(std::move(job));
}

void RecommendationServer::WakeLoop() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void RecommendationServer::MarkDirty(const std::shared_ptr<Conn>& conn) {
  {
    base::MutexLock lock(&dirty_mu_);
    dirty_.push_back(conn);
  }
  WakeLoop();
}

void RecommendationServer::EnqueueOutput(const std::shared_ptr<Conn>& conn,
                                         std::string frame) {
  {
    base::MutexLock lock(&conn->mu);
    if (conn->closed.load(std::memory_order_acquire)) return;
    if (conn->outbox.empty()) {
      conn->outbox_since_us = static_cast<uint64_t>(NowUs());
    }
    conn->outbox += frame;
    if (conn->outbox.size() > options_.max_write_queue_bytes) {
      // A reader this far behind must not pin memory; the loop drops it.
      conn->overflowed = true;
    }
  }
  MarkDirty(conn);
}

void RecommendationServer::RunStrand(std::shared_ptr<Conn> conn) {
  while (true) {
    std::string line;
    {
      base::MutexLock lock(&conn->mu);
      if (conn->lines.empty()) {
        conn->strand_scheduled = false;
        break;
      }
      line = std::move(conn->lines.front());
      conn->lines.pop_front();
    }
    ReqCtx ctx;
    ctx.conn = conn;
    std::string response = HandleLineOnConn(line, &ctx);
    response.push_back('\n');
    EnqueueOutput(conn, std::move(response));
    // Deferred work (starting a push driver) runs only after the response
    // is in the outbox, so the first push frame cannot overtake the ack.
    if (ctx.after_send) ctx.after_send();
  }
  bool flush_close;
  {
    base::MutexLock lock(&conn->mu);
    flush_close = conn->close_after_flush;
  }
  // A draining connection waits on this strand; re-check the close now.
  if (flush_close) MarkDirty(conn);
}

// --- Push driving ---------------------------------------------------------

bool RecommendationServer::PushFrameLocked(ServerSession* entry,
                                           JsonValue frame,
                                           bool even_if_evicted) {
  // An evicted session's terminal `drained` is pushed by EvictSession
  // itself; everything else this incarnation still emits (an in-flight
  // Next's progress, a queued phase job's frames) is dropped so `drained`
  // stays the last frame the subscriber sees for this id.
  if (entry->evicted.load(std::memory_order_acquire) && !even_if_evicted) {
    return false;
  }
  std::shared_ptr<Conn> conn = entry->push_conn.lock();
  if (conn == nullptr || conn->closed.load(std::memory_order_acquire)) {
    return false;
  }
  frame.Set("push", JsonValue::Bool(true));
  frame.Set("seq", JsonValue::Number(static_cast<double>(++entry->push_seq)));
  // Send stamp (steady clock, µs): bench_server measures frame-delivery
  // latency as receive time minus this.
  frame.Set("ts_us", JsonValue::Number(static_cast<double>(NowUs())));
  std::string line = frame.Dump();
  line.push_back('\n');
  EnqueueOutput(conn, std::move(line));
  push_frames_sent_.fetch_add(1);
  return true;
}

void RecommendationServer::PushProgress(ServerSession* entry,
                                        const std::string& id,
                                        const core::ProgressUpdate& update) {
  // The sink fires inside entry->session.Next()/Finish(), whose call sites
  // (DrivePhase, HandleNext, HandleFinish) all hold entry->mu — see the
  // declaration for why this is asserted rather than REQUIRES'd.
  PushFrameLocked(entry, ProgressToJson(id, update));
}

void RecommendationServer::MarkDrained(
    const std::shared_ptr<ServerSession>& entry) {
  if (entry->counted_inflight.exchange(false)) {
    inflight_sessions_.fetch_sub(1);
  }
}

void RecommendationServer::StartDrivingLocked(
    ServerSession* entry, const std::shared_ptr<Conn>& conn) {
  entry->push_conn = conn;
  entry->driving = true;
  if (!entry->counted_inflight.exchange(true)) {
    inflight_sessions_.fetch_add(1);
  }
}

void RecommendationServer::DrivePhase(std::shared_ptr<ServerSession> entry,
                                      std::string id) {
  bool requeue = false;
  ServerSession* s = entry.get();
  {
    base::MutexLock lock(&s->mu);
    if (s->finished || !s->driving ||
        s->evicted.load(std::memory_order_acquire)) {
      s->driving = false;
      return;
    }
    std::shared_ptr<Conn> conn = s->push_conn.lock();
    if (conn == nullptr || conn->closed.load(std::memory_order_acquire)) {
      // The subscriber disconnected mid-run: stop scanning on its behalf
      // but keep the session (cancelled, resumable from a reconnect).
      s->driving = false;
      s->session.Cancel();
      MarkDrained(entry);
      return;
    }
    s->last_active_ms.store(NowMs(), std::memory_order_relaxed);
    Result<std::optional<core::ProgressUpdate>> update = s->session.Next();
    s->last_active_ms.store(NowMs(), std::memory_order_relaxed);
    if (!update.ok()) {
      // Budget breach (OutOfRange) or execution failure: push the error,
      // then drained — the client surfaces the Status and `finish` still
      // returns partial results.
      PushFrameLocked(s, ErrorResponse(update.status(), id));
    }
    if (update.ok() && update->has_value() && !s->session.done()) {
      // The sink already pushed this phase's frame; more phases remain.
      requeue = true;
    } else {
      JsonValue drained = JsonValue::Object();
      drained.Set("ok", JsonValue::Bool(true));
      drained.Set("id", JsonValue::Str(id));
      drained.Set("type", JsonValue::Str("drained"));
      if (PushFrameLocked(s, std::move(drained))) s->drained_sent = true;
      s->driving = false;
      MarkDrained(entry);
    }
  }
  if (requeue) {
    // One phase per job: sessions on a saturated pool interleave fairly
    // instead of the first open monopolizing a worker to the end.
    PostJob([this, entry = std::move(entry), id = std::move(id)]() mutable {
      DrivePhase(std::move(entry), std::move(id));
    });
  }
}

// --- Admission / eviction -------------------------------------------------

bool RecommendationServer::AdmitOpen() const {
  return options_.max_inflight_phases == 0 ||
         inflight_sessions_.load(std::memory_order_relaxed) <
             options_.max_inflight_phases;
}

void RecommendationServer::Touch(ServerSession* entry) {
  entry->last_active_ms.store(NowMs(), std::memory_order_relaxed);
}

void RecommendationServer::AdvanceWheel() {
  const int64_t now = NowMs();
  std::vector<std::string> expired;
  {
    base::MutexLock lock(&wheel_mu_);
    wheel_.Advance(static_cast<uint64_t>(now), &expired);
  }
  const int64_t timeout =
      static_cast<int64_t>(options_.session_idle_timeout_ms);
  for (const std::string& id : expired) {
    std::shared_ptr<ServerSession> entry = FindSession(id);
    if (entry == nullptr) continue;  // finished since its timer was armed
    const int64_t idle =
        now - entry->last_active_ms.load(std::memory_order_relaxed);
    if (idle >= timeout) {
      EvictSession(id, entry);
    } else {
      // Lazy re-arm: the session was touched since the timer was set;
      // sleep out the remainder instead of rescheduling on every touch.
      base::MutexLock lock(&wheel_mu_);
      wheel_.Schedule(id, static_cast<uint64_t>(now),
                      static_cast<uint64_t>(timeout - idle));
    }
  }
}

void RecommendationServer::EvictSession(
    const std::string& id, const std::shared_ptr<ServerSession>& entry) {
  {
    base::MutexLock lock(&sessions_mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end() || it->second != entry) return;
    sessions_.erase(it);
  }
  // Cancel first, lock-free: an in-flight phase observes the token at
  // morsel granularity, so the entry->mu wait below is bounded by one
  // morsel, not a whole phase. The evicted flag then mutes every frame this
  // incarnation might still emit (a queued phase job, a Next mid-cut).
  entry->session.Cancel();
  entry->evicted.store(true, std::memory_order_release);
  {
    base::MutexLock lock(&entry->mu);
    if (!entry->drained_sent) {
      // Tell the v2 subscriber NOW that the stream is over — before the
      // fix, a queued phase job delivered `drained` arbitrarily late (or
      // emitted frames after it when the id was reopened).
      JsonValue drained = JsonValue::Object();
      drained.Set("ok", JsonValue::Bool(true));
      drained.Set("id", JsonValue::Str(id));
      drained.Set("type", JsonValue::Str("drained"));
      entry->drained_sent =
          PushFrameLocked(entry.get(), std::move(drained),
                          /*even_if_evicted=*/true);
    }
    entry->driving = false;
  }
  MarkDrained(entry);
  sessions_evicted_.fetch_add(1);
  static obs::Counter* evictions =
      obs::Registry::Global().GetCounter("server.evictions");
  evictions->Add();
}

// --- Request dispatch -----------------------------------------------------

std::string RecommendationServer::HandleLine(const std::string& line) {
  ReqCtx ctx;  // no connection: legacy v1 semantics, nowhere to push
  return HandleLineOnConn(line, &ctx);
}

std::string RecommendationServer::HandleLineOnConn(const std::string& line,
                                                   ReqCtx* ctx) {
  requests_.fetch_add(1);
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    errors_.fetch_add(1);
    return ErrorResponse(parsed.status(), "").Dump();
  }
  if (!parsed->is_object()) {
    errors_.fetch_add(1);
    return ErrorResponse(
               Status::InvalidArgument("request must be a JSON object"), "")
        .Dump();
  }
  JsonValue response = Dispatch(*parsed, ctx);
  if (!response.GetBool("ok")) errors_.fetch_add(1);
  return response.Dump();
}

JsonValue RecommendationServer::Dispatch(const JsonValue& request,
                                         ReqCtx* ctx) {
  const std::string op = request.GetString("op");
  const std::string id = request.GetString("id");
  if (op.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("missing \"op\" (expected "
                                "hello|open|next|cancel|resume|finish|"
                                "status|metrics)"),
        id);
  }
  // Per-request-type wall time (error paths included — they are served
  // requests too) and, when a recorder is active, a dispatch span.
  const OpInstruments instruments = InstrumentsForOp(op);
  obs::ScopedTimer request_timer(instruments.latency);
  SEEDB_TRACE_SPAN_IF(dispatch_span,
                      instruments.span_name != nullptr
                          ? instruments.span_name
                          : "server.dispatch",
                      0, obs::TraceRecorder::Enabled());
  if (op == "hello") return HandleHello(request, ctx);
  if (op == "status") return HandleStatus(id);
  if (op == "metrics") return HandleMetrics();
  if (id.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("op \"" + op + "\" needs a session \"id\""),
        id);
  }
  if (op == "open") return HandleOpen(id, request, ctx);
  if (op == "next") return HandleNext(id);
  if (op == "cancel") return HandleCancel(id);
  if (op == "resume") return HandleResume(id, ctx);
  if (op == "finish") return HandleFinish(id);
  return ErrorResponse(Status::InvalidArgument("unknown op \"" + op + "\""),
                       id);
}

JsonValue RecommendationServer::HandleMetrics() {
  return MetricsToJson(obs::Registry::Global().TakeSnapshot());
}

std::shared_ptr<RecommendationServer::ServerSession>
RecommendationServer::FindSession(const std::string& id) {
  base::MutexLock lock(&sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

JsonValue RecommendationServer::HandleHello(const JsonValue& request,
                                            ReqCtx* ctx) {
  Handshake handshake = NegotiateHello(request);
  // Strand state: only this connection's (single) strand worker reads it.
  if (ctx->conn != nullptr) ctx->conn->handshake = handshake;
  return HelloResponseToJson(handshake);
}

JsonValue RecommendationServer::HandleOpen(const std::string& id,
                                           const JsonValue& request,
                                           ReqCtx* ctx) {
  Result<core::SeeDBRequest> parsed = OpenRequestFromJson(request);
  if (!parsed.ok()) return ErrorResponse(parsed.status(), id);
  {
    // Early refusal so an over-limit or duplicate open skips the planning
    // work; the authoritative checks repeat at insert time below.
    base::MutexLock lock(&sessions_mu_);
    if (sessions_.count(id) > 0) {
      return ErrorResponse(
          Status::AlreadyExists("session \"" + id + "\" already open"), id);
    }
    if (!AdmitOpen()) {
      // Admission control: shed instead of queueing unbounded sessions on a
      // saturated Engine. Structured so clients can back off and retry.
      sessions_rejected_.fetch_add(1);
      static obs::Counter* busy_sheds =
          obs::Registry::Global().GetCounter("server.admission.busy_sheds");
      busy_sheds->Add();
      JsonValue busy = ErrorResponse(
          Status::Unavailable(
              "server at capacity (" +
              std::to_string(options_.max_inflight_phases) +
              " sessions in flight); retry later"),
          id);
      busy.Set("retry_after_ms",
               JsonValue::Number(static_cast<double>(kRetryAfterMs)));
      return busy;
    }
    if (sessions_.size() >= options_.max_sessions) {
      return ErrorResponse(
          Status::OutOfRange("server session limit reached (" +
                             std::to_string(options_.max_sessions) + ")"),
          id);
    }
  }
  // Planning runs outside the registry lock — it scans catalog statistics
  // and may take a while. Racing opens all plan; the losers are refused at
  // insert, where the duplicate-id and session-cap checks are re-run under
  // the same lock acquisition that inserts.
  Result<core::RecommendationSession> session = seedb_.Open(*parsed);
  if (!session.ok()) return ErrorResponse(session.status(), id);
  std::shared_ptr<ServerSession> entry;
  {
    base::MutexLock lock(&sessions_mu_);
    if (sessions_.size() >= options_.max_sessions) {
      return ErrorResponse(
          Status::OutOfRange("server session limit reached (" +
                             std::to_string(options_.max_sessions) + ")"),
          id);
    }
    auto [it, inserted] = sessions_.emplace(
        id, std::make_shared<ServerSession>(std::move(*session)));
    if (!inserted) {
      return ErrorResponse(
          Status::AlreadyExists("session \"" + id + "\" already open"), id);
    }
    entry = it->second;
  }
  Touch(entry.get());
  if (!entry->counted_inflight.exchange(true)) {
    inflight_sessions_.fetch_add(1);
  }
  sessions_opened_.fetch_add(1);
  if (options_.session_idle_timeout_ms > 0) {
    base::MutexLock lock(&wheel_mu_);
    wheel_.Schedule(id, static_cast<uint64_t>(NowMs()),
                    options_.session_idle_timeout_ms);
  }
  if (ctx->conn != nullptr && ctx->conn->handshake.push) {
    // Protocol v2: the server drives this session. The session's sink
    // serializes every ProgressUpdate straight into the bound connection's
    // write queue; the phase jobs below only sequence Next() calls.
    std::weak_ptr<ServerSession> weak = entry;
    entry->session.SetProgressSink(
        [this, weak, id](const core::ProgressUpdate& update) {
          std::shared_ptr<ServerSession> e = weak.lock();
          if (e == nullptr) return;
          PushProgress(e.get(), id, update);
        });
    {
      ServerSession* s = entry.get();
      base::MutexLock lock(&s->mu);
      StartDrivingLocked(s, ctx->conn);
    }
    ctx->after_send = [this, entry, id] {
      PostJob([this, entry, id] { DrivePhase(entry, id); });
    };
  }
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(true));
  response.Set("id", JsonValue::Str(id));
  response.Set("type", JsonValue::Str("opened"));
  return response;
}

JsonValue RecommendationServer::HandleNext(const std::string& id) {
  std::shared_ptr<ServerSession> entry = FindSession(id);
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound("unknown session \"" + id + "\""),
                         id);
  }
  Touch(entry.get());
  base::MutexLock lock(&entry->mu);
  Result<std::optional<core::ProgressUpdate>> update = entry->session.Next();
  if (!update.ok()) return ErrorResponse(update.status(), id);
  if (!update->has_value()) {
    JsonValue response = JsonValue::Object();
    response.Set("ok", JsonValue::Bool(true));
    response.Set("id", JsonValue::Str(id));
    response.Set("type", JsonValue::Str("drained"));
    return response;
  }
  return ProgressToJson(id, **update);
}

JsonValue RecommendationServer::HandleCancel(const std::string& id) {
  std::shared_ptr<ServerSession> entry = FindSession(id);
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound("unknown session \"" + id + "\""),
                         id);
  }
  Touch(entry.get());
  // No session lock: Cancel only flips the shared atomic token, which is
  // exactly how a cancel reaches a phase in flight on another connection —
  // or on the server's own push driver.
  entry->session.Cancel();
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(true));
  response.Set("id", JsonValue::Str(id));
  response.Set("type", JsonValue::Str("ack"));
  return response;
}

JsonValue RecommendationServer::HandleResume(const std::string& id,
                                             ReqCtx* ctx) {
  std::shared_ptr<ServerSession> entry = FindSession(id);
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound("unknown session \"" + id + "\""),
                         id);
  }
  Touch(entry.get());
  bool start_driving = false;
  {
    ServerSession* s = entry.get();
    base::MutexLock lock(&s->mu);
    if (s->finished) {
      return ErrorResponse(
          Status::NotFound("session \"" + id + "\" already finished"), id);
    }
    Status resumed = s->session.Resume();
    if (!resumed.ok()) return ErrorResponse(resumed, id);
    if (ctx->conn != nullptr && ctx->conn->handshake.push) {
      // Rebind the push stream to the resuming connection (it may be a
      // reconnect after the original subscriber went away).
      if (!s->driving) start_driving = true;
      StartDrivingLocked(s, ctx->conn);
    }
  }
  if (start_driving) {
    ctx->after_send = [this, entry, id] {
      PostJob([this, entry, id] { DrivePhase(entry, id); });
    };
  }
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(true));
  response.Set("id", JsonValue::Str(id));
  response.Set("type", JsonValue::Str("ack"));
  return response;
}

JsonValue RecommendationServer::HandleFinish(const std::string& id) {
  std::shared_ptr<ServerSession> entry = FindSession(id);
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound("unknown session \"" + id + "\""),
                         id);
  }
  Touch(entry.get());
  JsonValue response;
  {
    base::MutexLock lock(&entry->mu);
    if (entry->finished) {
      return ErrorResponse(
          Status::NotFound("session \"" + id + "\" already finished"), id);
    }
    entry->finished = true;
    entry->driving = false;  // a queued phase job exits on `finished`
    Result<core::RecommendationSet> set = entry->session.Finish();
    response = set.ok() ? ResultToJson(id, *set)
                        : ErrorResponse(set.status(), id);
  }
  // The id is gone either way — a failed Finish() leaves no session worth
  // keeping, and later ops on it answer not_found.
  {
    base::MutexLock lock(&sessions_mu_);
    sessions_.erase(id);
  }
  {
    base::MutexLock lock(&wheel_mu_);
    wheel_.Cancel(id);
  }
  MarkDrained(entry);
  sessions_finished_.fetch_add(1);
  return response;
}

JsonValue RecommendationServer::HandleStatus(const std::string& id) {
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(true));
  if (!id.empty()) response.Set("id", JsonValue::Str(id));
  response.Set("type", JsonValue::Str("status"));
  if (id.empty()) {
    std::vector<std::shared_ptr<ServerSession>> entries;
    {
      base::MutexLock lock(&sessions_mu_);
      entries.reserve(sessions_.size());
      for (auto& [sid, entry] : sessions_) entries.push_back(entry);
    }
    uint64_t memory = 0;
    for (auto& entry : entries) {
      base::MutexLock lock(&entry->mu);
      memory += entry->session.memory_bytes();
    }
    response.Set("sessions",
                 JsonValue::Number(static_cast<double>(entries.size())));
    response.Set("requests",
                 JsonValue::Number(static_cast<double>(requests_.load())));
    response.Set("memory_bytes",
                 JsonValue::Number(static_cast<double>(memory)));
    const db::EngineStatsSnapshot engine_stats = engine_->stats();
    if (engine_stats.result_cache_enabled) {
      response.Set("cache_enabled", JsonValue::Bool(true));
      response.Set("cache_hits",
                   JsonValue::Number(
                       static_cast<double>(engine_stats.cache_hits)));
      response.Set("cache_misses",
                   JsonValue::Number(
                       static_cast<double>(engine_stats.cache_misses)));
      response.Set("cache_bytes",
                   JsonValue::Number(
                       static_cast<double>(engine_stats.cache_bytes)));
      response.Set("cache_evictions",
                   JsonValue::Number(
                       static_cast<double>(engine_stats.cache_evictions)));
    }
    return response;
  }
  std::shared_ptr<ServerSession> entry = FindSession(id);
  if (entry == nullptr) {
    return ErrorResponse(Status::NotFound("unknown session \"" + id + "\""),
                         id);
  }
  Touch(entry.get());
  // Locked: phases_run / memory_bytes read execution state a concurrent
  // Next() mutates.
  base::MutexLock lock(&entry->mu);
  response.Set("session", JsonValue::Bool(true));
  response.Set("done", JsonValue::Bool(entry->session.done()));
  response.Set("cancelled", JsonValue::Bool(entry->session.cancelled()));
  response.Set("budget_exceeded",
               JsonValue::Bool(entry->session.budget_exceeded()));
  response.Set("phases_run",
               JsonValue::Number(
                   static_cast<double>(entry->session.phases_run())));
  response.Set("memory_bytes",
               JsonValue::Number(
                   static_cast<double>(entry->session.memory_bytes())));
  return response;
}

}  // namespace seedb::server
