#include "server/timer_wheel.h"

#include <algorithm>

namespace seedb::server {

TimerWheel::TimerWheel(uint64_t tick_ms, size_t num_slots)
    : tick_ms_(tick_ms == 0 ? 1 : tick_ms),
      slots_(std::max<size_t>(num_slots, 2)) {}

void TimerWheel::Schedule(const std::string& key, uint64_t now_ms,
                          uint64_t delay_ms) {
  if (!started_) {
    // Anchor the wheel's epoch at the first schedule, so absolute times
    // from any clock base work.
    current_tick_ = now_ms / tick_ms_;
    started_ = true;
  }
  Cancel(key);
  // Round the due time UP to a tick so a timer never fires early, and park
  // entries scheduled for ticks the cursor already passed in the next slot.
  const uint64_t due_tick =
      std::max((now_ms + delay_ms + tick_ms_ - 1) / tick_ms_,
               current_tick_ + 1);
  const uint64_t ticks_ahead = due_tick - current_tick_;
  Entry entry;
  entry.slot = (cursor_ + ticks_ahead) % slots_.size();
  entry.rounds = ticks_ahead / slots_.size();
  slots_[entry.slot].push_back(key);
  entries_[key] = entry;
}

void TimerWheel::Cancel(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  std::vector<std::string>& slot = slots_[it->second.slot];
  slot.erase(std::remove(slot.begin(), slot.end(), key), slot.end());
  entries_.erase(it);
}

void TimerWheel::Advance(uint64_t now_ms, std::vector<std::string>* expired) {
  if (!started_) return;
  const uint64_t target_tick = now_ms / tick_ms_;
  while (current_tick_ < target_tick) {
    ++current_tick_;
    cursor_ = (cursor_ + 1) % slots_.size();
    std::vector<std::string>& slot = slots_[cursor_];
    size_t kept = 0;
    for (size_t i = 0; i < slot.size(); ++i) {
      auto it = entries_.find(slot[i]);
      if (it == entries_.end()) continue;  // cancelled but not yet swept
      if (it->second.rounds > 0) {
        --it->second.rounds;
        // Compact in place; guard the kept==i case (self-move would
        // corrupt the key).
        if (kept != i) slot[kept] = std::move(slot[i]);
        ++kept;
        continue;
      }
      entries_.erase(it);
      expired->push_back(std::move(slot[i]));
    }
    slot.resize(kept);
  }
}

}  // namespace seedb::server
