// Client library for the recommendation server: a blocking connection
// speaking the line-delimited JSON protocol of server/protocol.h.
//
// Protocol v2 (the default): Hello() negotiates the `push` capability, and
// sessions opened on the connection are driven by the server — progress
// arrives as unsolicited push frames, consumed through a RemoteSession:
//
//   SEEDB_ASSIGN_OR_RETURN(auto client, Client::ConnectUnix("/tmp/seedb.sock"));
//   SEEDB_RETURN_IF_ERROR(client.Hello());
//   OpenSpec spec;
//   spec.sql = "SELECT * FROM sales WHERE product = 'Laserwave'";
//   spec.k = 3;
//   spec.phases = 8;
//   SEEDB_ASSIGN_OR_RETURN(RemoteSession session, client.OpenSession("s1", spec));
//   session.OnProgress([](const RemoteProgress& p) { ... });  // per phase
//   SEEDB_ASSIGN_OR_RETURN(RemoteResult result, session.Await());
//
// Await() pumps the push stream — no polling round-trips — delivering each
// phase's frame to the OnProgress callback, and finishes the session once
// the server signals `drained`. A mid-stream server error (e.g. a memory
// budget breach) is remembered in last_error() and Await() still finishes,
// so partial results come back exactly as they do in-process.
//
// Legacy v1: skip Hello() and the connection polls — Open() / Next() /
// Finish() make one request round-trip each, unchanged. On a push-mode
// connection Next() survives as a DEPRECATED shim that drains the local
// push queue (again no round-trips), so v1-shaped loops keep working.
//
// Server-side failures come back as the Status the server produced (codes
// round-trip through the protocol's error tokens) — a budget breach is the
// same OutOfRange the in-process session returns, admission shedding is
// kUnavailable ("busy"). Used by the CLI's \connect mode, the
// differential/stress suites, and bench_server.

#ifndef SEEDB_SERVER_CLIENT_H_
#define SEEDB_SERVER_CLIENT_H_

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "server/protocol.h"
#include "util/result.h"

namespace seedb::server {

class RemoteSession;

/// \brief One connection to a RecommendationServer. Blocking, not
/// thread-safe (one request in flight at a time); open several clients for
/// concurrency — sessions live server-side and any connection may address
/// any session id.
class Client {
 public:
  static Result<Client> ConnectUnix(const std::string& path);
  /// `host` is a numeric IPv4 address, e.g. "127.0.0.1".
  static Result<Client> ConnectTcp(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  /// Negotiates the protocol version and capabilities (push on by
  /// default). A server predating `hello` answers with an error; the
  /// client then stays on v1 silently, so connecting tooling works against
  /// either generation.
  Status Hello(int version = kProtocolVersion, bool request_push = true);
  const Handshake& handshake() const { return handshake_; }
  /// True once Hello() negotiated server-driven push frames.
  bool push_enabled() const { return handshake_.push; }
  /// The raw socket (bench_server multiplexes many clients via poll()).
  int fd() const { return fd_; }

  /// Sends one request object and returns the parsed response frame
  /// (including {"ok":false,...} error frames — the typed wrappers below
  /// convert those to Status). Push frames arriving ahead of the response
  /// are stashed into their sessions' queues, never lost.
  Result<JsonValue> Call(const JsonValue& request);

  /// Sends a raw line verbatim and returns the raw response line — the
  /// protocol tests' hatch for malformed input the typed API cannot send.
  /// Does NOT sift push frames; use on v1 connections.
  Result<std::string> CallRaw(const std::string& line);

  /// The "retry_after_ms" hint of the last error response, 0 when the last
  /// response carried none. Admission control answers a shed `open` with
  /// busy (kUnavailable) plus this hint; callers that see Unavailable can
  /// back off exactly this long instead of guessing. The hint is also
  /// appended to the returned Status message ("... (retry after N ms)").
  int last_retry_after_ms() const { return last_retry_after_ms_; }

  Status Open(const std::string& id, const OpenSpec& spec);
  /// Protocol v2: opens a server-driven session and returns its handle.
  /// The handle borrows this client — keep the client alive (and unmoved)
  /// while using it.
  Result<RemoteSession> OpenSession(const std::string& id,
                                    const OpenSpec& spec);
  /// v1: one polling round-trip; nullopt once the session is drained. On a
  /// push connection this is the deprecated compatibility shim — it pops
  /// the next pushed update instead (no request is sent).
  Result<std::optional<RemoteProgress>> Next(const std::string& id);
  Status Cancel(const std::string& id);
  Status Resume(const std::string& id);
  /// Terminal: the final ranking; the server forgets the id afterwards.
  Result<RemoteResult> Finish(const std::string& id);
  /// Session status, or server-wide status when `id` is empty.
  Result<RemoteStatus> GetStatus(const std::string& id = "");
  /// The server's metrics snapshot (`{"op":"metrics"}`) as the raw frame —
  /// counters/gauges/histograms per protocol.h. Returned untyped so tooling
  /// can render new metrics without a client-library release.
  Result<JsonValue> Metrics();

 private:
  friend class RemoteSession;

  explicit Client(int fd) : fd_(fd) {}

  Result<std::string> ReadLine();
  Result<JsonValue> ReadFrame();
  /// OK for an ack/typed response; for {"ok":false,...} the Status the
  /// frame carries, with the retry_after_ms hint (if any) recorded and
  /// appended to the message.
  Status CheckOk(const JsonValue& response);
  /// Files a push frame into its session's queue.
  void StashPush(JsonValue frame);
  /// The next push frame addressed to `id`, reading off the socket as
  /// needed. Once the stream drained, synthesizes further drained frames
  /// instead of blocking on a socket that will stay silent.
  Result<JsonValue> NextPushFrame(const std::string& id);

  /// Per-session push stream: frames not yet consumed, and whether the
  /// server already said `drained`.
  struct PushStream {
    std::deque<JsonValue> frames;
    bool drained = false;
  };

  int fd_ = -1;
  /// Bytes read past the last returned line.
  std::string buffer_;
  Handshake handshake_;
  int last_retry_after_ms_ = 0;
  std::unordered_map<std::string, PushStream> push_;
};

/// \brief Handle to one server-driven session on a push-mode connection.
///
/// Borrows its Client (which must outlive it); not thread-safe, same as the
/// client. Progress consumption is callback-style — OnProgress + Await —
/// or, for v1-shaped code, the deprecated Next() shim.
class RemoteSession {
 public:
  const std::string& id() const { return id_; }

  /// Registers the callback Await() hands each pushed progress frame to.
  void OnProgress(std::function<void(const RemoteProgress&)> fn) {
    on_progress_ = std::move(fn);
  }

  /// Pumps the push stream until the server signals drained — delivering
  /// every progress frame to the OnProgress callback — then finishes the
  /// session and returns the final result. A mid-stream error frame (e.g.
  /// budget breach) is stored in last_error() and Await() still finishes:
  /// partial results return exactly as in-process.
  Result<RemoteResult> Await();

  /// DEPRECATED v1-compatibility shim: pops the next pushed update,
  /// nullopt once drained. No polling round-trip is made — the frames were
  /// already pushed. New code should use OnProgress + Await.
  Result<std::optional<RemoteProgress>> Next();

  /// Flips the server-side cancel token; the in-flight phase stops at
  /// morsel granularity and the stream then drains.
  Status Cancel();
  /// Re-opens a cancelled session; the server resumes driving and pushing
  /// to this connection.
  Status Resume();
  /// Explicit finish (Await() does this for you).
  Result<RemoteResult> Finish() { return client_->Finish(id_); }

  /// The last mid-stream error frame Await()/Next() saw (OK if none).
  const Status& last_error() const { return last_error_; }

 private:
  friend class Client;
  RemoteSession(Client* client, std::string id)
      : client_(client), id_(std::move(id)) {}

  Client* client_;
  std::string id_;
  std::function<void(const RemoteProgress&)> on_progress_;
  Status last_error_;
};

}  // namespace seedb::server

#endif  // SEEDB_SERVER_CLIENT_H_
