// Client library for the recommendation server: a blocking connection
// speaking the line-delimited JSON protocol of server/protocol.h, with
// typed wrappers mirroring the RecommendationSession surface.
//
//   SEEDB_ASSIGN_OR_RETURN(auto client, Client::ConnectUnix("/tmp/seedb.sock"));
//   OpenSpec spec;
//   spec.sql = "SELECT * FROM sales WHERE product = 'Laserwave'";
//   spec.k = 3;
//   spec.phases = 8;
//   SEEDB_RETURN_IF_ERROR(client.Open("s1", spec));
//   while (true) {
//     SEEDB_ASSIGN_OR_RETURN(auto progress, client.Next("s1"));
//     if (!progress.has_value()) break;     // drained
//     ...  // provisional top-k, rows scanned, memory footprint
//   }
//   SEEDB_ASSIGN_OR_RETURN(RemoteResult result, client.Finish("s1"));
//
// Server-side failures come back as the Status the server produced (codes
// round-trip through the protocol's error tokens) — a budget breach is the
// same OutOfRange the in-process session returns. Used by the CLI's
// \connect mode, the differential/stress suites, and bench_server.

#ifndef SEEDB_SERVER_CLIENT_H_
#define SEEDB_SERVER_CLIENT_H_

#include <optional>
#include <string>

#include "server/protocol.h"
#include "util/result.h"

namespace seedb::server {

/// \brief One connection to a RecommendationServer. Blocking, not
/// thread-safe (one request in flight at a time); open several clients for
/// concurrency — sessions live server-side and any connection may address
/// any session id.
class Client {
 public:
  static Result<Client> ConnectUnix(const std::string& path);
  /// `host` is a numeric IPv4 address, e.g. "127.0.0.1".
  static Result<Client> ConnectTcp(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  /// Sends one request object and returns the parsed response frame
  /// (including {"ok":false,...} error frames — the typed wrappers below
  /// convert those to Status).
  Result<JsonValue> Call(const JsonValue& request);

  /// Sends a raw line verbatim and returns the raw response line — the
  /// protocol tests' hatch for malformed input the typed API cannot send.
  Result<std::string> CallRaw(const std::string& line);

  Status Open(const std::string& id, const OpenSpec& spec);
  /// nullopt once the session is drained (every phase ran, or it was
  /// cancelled / early-stopped / budget-stopped before this call).
  Result<std::optional<RemoteProgress>> Next(const std::string& id);
  Status Cancel(const std::string& id);
  Status Resume(const std::string& id);
  /// Terminal: the final ranking; the server forgets the id afterwards.
  Result<RemoteResult> Finish(const std::string& id);
  /// Session status, or server-wide status when `id` is empty.
  Result<RemoteStatus> GetStatus(const std::string& id = "");

 private:
  explicit Client(int fd) : fd_(fd) {}

  Result<std::string> ReadLine();

  int fd_ = -1;
  /// Bytes read past the last returned line.
  std::string buffer_;
};

}  // namespace seedb::server

#endif  // SEEDB_SERVER_CLIENT_H_
