#include "server/net_util.h"

#include <fcntl.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace seedb::server {

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoStatus("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace seedb::server
