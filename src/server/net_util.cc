#include "server/net_util.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace seedb::server {

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace seedb::server
