// Wire protocol of the recommendation server: line-delimited JSON.
//
// Every message is one JSON object on one line. Requests name an operation
// and (except `hello` and server-wide `status`) a client-chosen session id:
//
//   {"op":"hello","version":2,"capabilities":["push"]}
//                                                  -> {"ok":true,"type":"hello",...}
//   {"op":"open","id":"s1","sql":"SELECT * FROM sales WHERE ...","k":3,
//    "phases":8,"pruner":"ci"}                     -> {"ok":true,"type":"opened",...}
//   {"op":"next","id":"s1"}                        -> {"ok":true,"type":"progress",...}
//                                                     or {"type":"drained"}
//   {"op":"cancel","id":"s1"}                      -> {"ok":true,"type":"ack"}
//   {"op":"resume","id":"s1"}                      -> {"ok":true,"type":"ack"}
//   {"op":"status","id":"s1"} / {"op":"status"}    -> {"ok":true,"type":"status",...}
//   {"op":"finish","id":"s1"}                      -> {"ok":true,"type":"result",...}
//   {"op":"metrics"}                               -> {"ok":true,"type":"metrics",...}
//
// Protocol v2 (negotiated by `hello` with the `push` capability): a session
// opened on a v2 connection is DRIVEN BY THE SERVER — every completed
// phase's ProgressUpdate arrives as an unsolicited push frame the moment it
// completes, no `next` polling. Push frames are distinguished from
// responses by "push":true and carry a per-session "seq" plus the server's
// steady-clock send stamp "ts_us" (frame-delivery latency measurement):
//
//   {"ok":true,"id":"s1","type":"progress","push":true,"seq":1,...}
//   {"ok":true,"id":"s1","type":"drained","push":true,"seq":4}
//
// After the drained push frame the client sends `finish` and receives the
// same `result` frame v1 gets — results over push are bit-identical to v1
// and to in-process runs. Connections that skip `hello` get the legacy v1
// polling behavior unchanged. The `binary_frames` capability name is
// RESERVED for bulk view data; the server never advertises it yet.
//
// Failures are {"ok":false,"error":"...","code":"invalid_argument"|...} and
// never tear down the connection; the error codes round-trip seedb::Status
// codes so the client library can hand callers the same Status the server
// produced ("busy" maps to kUnavailable — admission control shedding an
// `open`; such frames carry a "retry_after_ms" hint). Doubles are
// serialized with %.17g (see server/json.h), so utilities fetched over the
// wire compare EQUAL to in-process results — the server_equivalence
// differential suite pins that.
//
// This header is shared by the server (encode results / decode requests)
// and the client library (the reverse); the Remote* structs are the
// client-side view of the response frames.

#ifndef SEEDB_SERVER_PROTOCOL_H_
#define SEEDB_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/recommendation.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "server/json.h"

namespace seedb::server {

/// The highest protocol version this build speaks.
inline constexpr int kProtocolVersion = 2;
/// Capability tokens. kCapPush: server-driven push frames. kCapBinaryFrames
/// is reserved (never advertised yet).
inline constexpr const char* kCapPush = "push";
inline constexpr const char* kCapBinaryFrames = "binary_frames";

// --- Status <-> error-code tokens ---

/// Stable lower-case token for an error code ("invalid_argument", ...).
const char* StatusCodeToken(StatusCode code);
StatusCode StatusCodeFromToken(const std::string& token);

/// {"ok":false,"id":...,"error":msg,"code":token}. `id` omitted when empty.
JsonValue ErrorResponse(const Status& status, const std::string& id);

/// Reconstructs the Status carried by an {"ok":false,...} response.
Status StatusFromErrorResponse(const JsonValue& response);

// --- Protocol v2 handshake ---

/// What a `hello` negotiated: the version both sides speak and whether the
/// connection is in push mode.
struct Handshake {
  int version = 1;
  bool push = false;
};

/// The client's `hello` line: requested version + capabilities.
JsonValue HelloRequestToJson(int version, const std::vector<std::string>& capabilities);

/// Server side: negotiates against `request` (min of versions, intersection
/// of capabilities with what this build supports). Unknown requested
/// capabilities are ignored, never errors — forward compatibility.
Handshake NegotiateHello(const JsonValue& request);

/// {"ok":true,"type":"hello","version":...,"capabilities":[...]} for a
/// completed negotiation.
JsonValue HelloResponseToJson(const Handshake& handshake);

/// Client side: the Handshake a server's hello response describes.
Result<Handshake> HandshakeFromJson(const JsonValue& response);

// --- Open requests ---

/// \brief Client-side description of an `open` request: which analyst query
/// to answer and how to execute it. String-typed knobs use the same names
/// the CLI accepts; zero/empty fields mean "server default".
struct OpenSpec {
  /// The analyst query as SQL ("SELECT * FROM t WHERE ..."). Either this or
  /// `table` (whole-table selection) must be set.
  std::string sql;
  std::string table;
  size_t k = 0;
  size_t bottom_k = 0;
  std::string metric;    // core::ParseDistanceMetric names
  std::string strategy;  // per-query | shared-scan | phased-shared-scan
  size_t phases = 0;
  std::string pruner;  // none | ci | mab
  size_t early_stop = 0;
  double delta = -1.0;          // < 0 = default
  double utility_range = -1.0;  // < 0 = default
  size_t memory_budget = 0;     // bytes; 0 = unlimited
  size_t parallelism = 0;       // 0 = default
  /// Mark the session's engine-side spans recordable by the server's
  /// obs::TraceRecorder (SeeDBRequest::WithTrace). No effect unless the
  /// server runs with --trace-out.
  bool trace = false;
};

/// The `open` request line for `spec` (without trailing newline).
JsonValue OpenRequestToJson(const std::string& id, const OpenSpec& spec);

/// Builds the core request an `open` message describes. Unknown metric /
/// strategy / pruner names and missing sql+table are InvalidArgument.
Result<core::SeeDBRequest> OpenRequestFromJson(const JsonValue& request);

// --- Response frames, server-side encoders ---

JsonValue ProgressToJson(const std::string& id,
                         const core::ProgressUpdate& update);
JsonValue ResultToJson(const std::string& id,
                       const core::RecommendationSet& set);

// --- Metrics frames (protocol v2 addition; answered on any connection) ---
//
//   {"op":"metrics"}  ->  {"ok":true,"type":"metrics",
//                          "counters":{"engine.scan.rows":123,...},
//                          "gauges":{...},
//                          "histograms":{"server.request.next_us":{
//                            "count":N,"sum_us":S,"mean_us":M,
//                            "p50_us":..,"p95_us":..,"p99_us":..,
//                            "bucket_le_us":[1,2,4,...],
//                            "bucket_counts":[0,3,...]}}}
//
// Quantiles are computed server-side from the fixed log-spaced buckets
// (obs/metrics.h): each reported pXX is the upper boundary of the bucket
// holding that rank. bucket_le_us/bucket_counts are parallel arrays over
// every bucket (the last entry is the overflow bucket, reported with the
// last finite boundary).

/// The `metrics` request line.
JsonValue MetricsRequestToJson();

/// Encodes a registry snapshot as the `metrics` response frame.
JsonValue MetricsToJson(const obs::Snapshot& snapshot);

// --- Response frames, client-side views ---

/// One provisionally ranked view of a progress frame. Bounds are +/-infinity
/// when the frame omitted them (non-finite CI).
struct RemoteView {
  std::string id;
  std::string dimension;
  std::string measure;
  double utility = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};

/// A `progress` frame — the wire shape of core::ProgressUpdate.
struct RemoteProgress {
  size_t phase = 0;
  size_t total_phases = 0;
  double phase_seconds = 0.0;
  uint64_t rows_scanned = 0;
  uint64_t total_rows = 0;
  size_t views_active = 0;
  size_t views_pruned = 0;
  /// +infinity when the frame carried no finite half-width.
  double ci_half_width = 0.0;
  uint64_t memory_bytes = 0;
  bool early_stopped = false;
  bool cancelled = false;
  std::vector<RemoteView> top;
};

/// One final recommendation of a `result` frame.
struct RemoteRecommendation {
  size_t rank = 0;
  std::string view_id;
  std::string dimension;
  std::string measure;
  double utility = 0.0;
  std::string target_sql;
  std::string comparison_sql;
  std::string combined_sql;
};

struct RemotePrunedView {
  std::string view_id;
  double partial_utility = 0.0;
  size_t pruned_at_phase = 0;
  uint64_t rows_seen = 0;
};

/// The cost-profile subset a `result` frame carries.
struct RemoteProfile {
  size_t views_enumerated = 0;
  size_t views_pruned = 0;
  size_t views_executed = 0;
  size_t views_pruned_online = 0;
  size_t examined_view_count = 0;
  size_t phases_executed = 0;
  size_t queries_issued = 0;
  size_t table_scans = 0;
  uint64_t rows_scanned = 0;
  /// (query, grouping set) pairs adopted from / missed in the server
  /// engine's result cache during this run; both 0 while the cache is off.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  bool early_stopped = false;
  bool cancelled = false;
  bool budget_exceeded = false;
};

/// A `result` frame — the wire shape of core::RecommendationSet.
struct RemoteResult {
  std::string metric;
  std::vector<RemoteRecommendation> top;
  std::vector<RemoteRecommendation> low;
  std::vector<RemotePrunedView> pruned_online;
  RemoteProfile profile;
};

/// A `status` frame. With a session id, the session fields are set; a
/// server-wide status fills `sessions` / `requests` only.
struct RemoteStatus {
  bool session = false;
  bool done = false;
  bool cancelled = false;
  bool budget_exceeded = false;
  size_t phases_run = 0;
  uint64_t memory_bytes = 0;
  size_t sessions = 0;
  uint64_t requests = 0;
  /// Server-wide result-cache counters (db/scan_cache.h via the engine);
  /// all zero while the server runs with the cache disabled.
  bool cache_enabled = false;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_evictions = 0;
};

Result<RemoteProgress> ProgressFromJson(const JsonValue& frame);
Result<RemoteResult> ResultFromJson(const JsonValue& frame);
Result<RemoteStatus> StatusFromJson(const JsonValue& frame);

}  // namespace seedb::server

#endif  // SEEDB_SERVER_PROTOCOL_H_
