#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "server/net_util.h"

namespace seedb::server {
namespace {

/// An ack/typed response, or the Status an error frame carries.
Status CheckOk(const JsonValue& response) {
  if (response.GetBool("ok")) return Status::OK();
  return StatusFromErrorResponse(response);
}

}  // namespace

Result<Client> Client::ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket(AF_UNIX)");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = ErrnoStatus("connect(" + path + ")");
    ::close(fd);
    return s;
  }
  return Client(fd);
}

Result<Client> Client::ConnectTcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket(AF_INET)");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = ErrnoStatus("connect(" + host + ":" + std::to_string(port) + ")");
    ::close(fd);
    return s;
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::string> Client::ReadLine() {
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IOError("server closed the connection");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<std::string> Client::CallRaw(const std::string& line) {
  if (fd_ < 0) return Status::Internal("client not connected");
  std::string framed = line;
  framed.push_back('\n');
  if (!WriteAll(fd_, framed)) return ErrnoStatus("send");
  return ReadLine();
}

Result<JsonValue> Client::Call(const JsonValue& request) {
  SEEDB_ASSIGN_OR_RETURN(std::string line, CallRaw(request.Dump()));
  return ParseJson(line);
}

Status Client::Open(const std::string& id, const OpenSpec& spec) {
  SEEDB_ASSIGN_OR_RETURN(JsonValue response,
                         Call(OpenRequestToJson(id, spec)));
  return CheckOk(response);
}

Result<std::optional<RemoteProgress>> Client::Next(const std::string& id) {
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue::Str("next"));
  request.Set("id", JsonValue::Str(id));
  SEEDB_ASSIGN_OR_RETURN(JsonValue response, Call(request));
  SEEDB_RETURN_IF_ERROR(CheckOk(response));
  if (response.GetString("type") == "drained") {
    return std::optional<RemoteProgress>();
  }
  SEEDB_ASSIGN_OR_RETURN(RemoteProgress progress, ProgressFromJson(response));
  return std::optional<RemoteProgress>(std::move(progress));
}

Status Client::Cancel(const std::string& id) {
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue::Str("cancel"));
  request.Set("id", JsonValue::Str(id));
  SEEDB_ASSIGN_OR_RETURN(JsonValue response, Call(request));
  return CheckOk(response);
}

Status Client::Resume(const std::string& id) {
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue::Str("resume"));
  request.Set("id", JsonValue::Str(id));
  SEEDB_ASSIGN_OR_RETURN(JsonValue response, Call(request));
  return CheckOk(response);
}

Result<RemoteResult> Client::Finish(const std::string& id) {
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue::Str("finish"));
  request.Set("id", JsonValue::Str(id));
  SEEDB_ASSIGN_OR_RETURN(JsonValue response, Call(request));
  SEEDB_RETURN_IF_ERROR(CheckOk(response));
  return ResultFromJson(response);
}

Result<RemoteStatus> Client::GetStatus(const std::string& id) {
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue::Str("status"));
  if (!id.empty()) request.Set("id", JsonValue::Str(id));
  SEEDB_ASSIGN_OR_RETURN(JsonValue response, Call(request));
  SEEDB_RETURN_IF_ERROR(CheckOk(response));
  return StatusFromJson(response);
}

}  // namespace seedb::server
