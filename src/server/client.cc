#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "server/net_util.h"

namespace seedb::server {

Status Client::CheckOk(const JsonValue& response) {
  last_retry_after_ms_ = static_cast<int>(response.GetInt("retry_after_ms"));
  if (response.GetBool("ok")) return Status::OK();
  Status status = StatusFromErrorResponse(response);
  if (last_retry_after_ms_ > 0) {
    // Admission-control busy frames say when capacity is expected back;
    // keep the hint on the Status so every caller that prints the error
    // sees it, and machine-readable via last_retry_after_ms().
    return Status(status.code(),
                  status.message() + " (retry after " +
                      std::to_string(last_retry_after_ms_) + " ms)");
  }
  return status;
}

Result<Client> Client::ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket(AF_UNIX)");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = ErrnoStatus("connect(" + path + ")");
    ::close(fd);
    return s;
  }
  return Client(fd);
}

Result<Client> Client::ConnectTcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket(AF_INET)");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = ErrnoStatus("connect(" + host + ":" + std::to_string(port) + ")");
    ::close(fd);
    return s;
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)),
      handshake_(other.handshake_),
      last_retry_after_ms_(other.last_retry_after_ms_),
      push_(std::move(other.push_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
    handshake_ = other.handshake_;
    last_retry_after_ms_ = other.last_retry_after_ms_;
    push_ = std::move(other.push_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::string> Client::ReadLine() {
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IOError("server closed the connection");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<JsonValue> Client::ReadFrame() {
  SEEDB_ASSIGN_OR_RETURN(std::string line, ReadLine());
  return ParseJson(line);
}

void Client::StashPush(JsonValue frame) {
  PushStream& stream = push_[frame.GetString("id")];
  if (frame.GetString("type") == "drained") stream.drained = true;
  stream.frames.push_back(std::move(frame));
}

Result<JsonValue> Client::NextPushFrame(const std::string& id) {
  while (true) {
    PushStream& stream = push_[id];
    if (!stream.frames.empty()) {
      JsonValue frame = std::move(stream.frames.front());
      stream.frames.pop_front();
      return frame;
    }
    if (stream.drained) {
      // The stream already ended; keep answering drained instead of
      // blocking on a socket that will stay silent for this id.
      JsonValue frame = JsonValue::Object();
      frame.Set("ok", JsonValue::Bool(true));
      frame.Set("id", JsonValue::Str(id));
      frame.Set("type", JsonValue::Str("drained"));
      return frame;
    }
    SEEDB_ASSIGN_OR_RETURN(JsonValue frame, ReadFrame());
    if (!frame.GetBool("push")) {
      return Status::Internal("unsolicited non-push frame: " + frame.Dump());
    }
    StashPush(std::move(frame));  // note: push_[...] may rehash; loop re-looks-up
  }
}

Result<std::string> Client::CallRaw(const std::string& line) {
  if (fd_ < 0) return Status::Internal("client not connected");
  std::string framed = line;
  framed.push_back('\n');
  if (!WriteAll(fd_, framed)) return ErrnoStatus("send");
  return ReadLine();
}

Result<JsonValue> Client::Call(const JsonValue& request) {
  if (fd_ < 0) return Status::Internal("client not connected");
  std::string framed = request.Dump();
  framed.push_back('\n');
  if (!WriteAll(fd_, framed)) return ErrnoStatus("send");
  // Responses arrive in request order; push frames may interleave ahead of
  // the response and are stashed for their sessions.
  while (true) {
    SEEDB_ASSIGN_OR_RETURN(JsonValue frame, ReadFrame());
    if (frame.GetBool("push")) {
      StashPush(std::move(frame));
      continue;
    }
    return frame;
  }
}

Status Client::Hello(int version, bool request_push) {
  std::vector<std::string> capabilities;
  if (request_push) capabilities.push_back(kCapPush);
  SEEDB_ASSIGN_OR_RETURN(JsonValue response,
                         Call(HelloRequestToJson(version, capabilities)));
  if (!response.GetBool("ok")) {
    // A pre-v2 server: unknown op. Stay on v1 — everything still works,
    // just by polling.
    handshake_ = Handshake{};
    return Status::OK();
  }
  SEEDB_ASSIGN_OR_RETURN(handshake_, HandshakeFromJson(response));
  return Status::OK();
}

Status Client::Open(const std::string& id, const OpenSpec& spec) {
  SEEDB_ASSIGN_OR_RETURN(JsonValue response,
                         Call(OpenRequestToJson(id, spec)));
  return CheckOk(response);
}

Result<RemoteSession> Client::OpenSession(const std::string& id,
                                          const OpenSpec& spec) {
  if (!push_enabled()) {
    return Status::InvalidArgument(
        "OpenSession needs a push-mode connection (call Hello() first)");
  }
  SEEDB_RETURN_IF_ERROR(Open(id, spec));
  return RemoteSession(this, id);
}

Result<std::optional<RemoteProgress>> Client::Next(const std::string& id) {
  if (push_enabled()) {
    // Deprecated shim: the server already pushed every update; drain the
    // local queue instead of making a polling round-trip.
    SEEDB_ASSIGN_OR_RETURN(JsonValue frame, NextPushFrame(id));
    SEEDB_RETURN_IF_ERROR(CheckOk(frame));
    if (frame.GetString("type") == "drained") {
      return std::optional<RemoteProgress>();
    }
    SEEDB_ASSIGN_OR_RETURN(RemoteProgress progress, ProgressFromJson(frame));
    return std::optional<RemoteProgress>(std::move(progress));
  }
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue::Str("next"));
  request.Set("id", JsonValue::Str(id));
  SEEDB_ASSIGN_OR_RETURN(JsonValue response, Call(request));
  SEEDB_RETURN_IF_ERROR(CheckOk(response));
  if (response.GetString("type") == "drained") {
    return std::optional<RemoteProgress>();
  }
  SEEDB_ASSIGN_OR_RETURN(RemoteProgress progress, ProgressFromJson(response));
  return std::optional<RemoteProgress>(std::move(progress));
}

Status Client::Cancel(const std::string& id) {
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue::Str("cancel"));
  request.Set("id", JsonValue::Str(id));
  SEEDB_ASSIGN_OR_RETURN(JsonValue response, Call(request));
  return CheckOk(response);
}

Status Client::Resume(const std::string& id) {
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue::Str("resume"));
  request.Set("id", JsonValue::Str(id));
  SEEDB_ASSIGN_OR_RETURN(JsonValue response, Call(request));
  SEEDB_RETURN_IF_ERROR(CheckOk(response));
  // The server drives again after a push-mode resume: reopen the local
  // stream so the new frames are consumable past the old drained marker.
  if (push_enabled()) push_[id].drained = false;
  return Status::OK();
}

Result<RemoteResult> Client::Finish(const std::string& id) {
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue::Str("finish"));
  request.Set("id", JsonValue::Str(id));
  SEEDB_ASSIGN_OR_RETURN(JsonValue response, Call(request));
  SEEDB_RETURN_IF_ERROR(CheckOk(response));
  push_.erase(id);
  return ResultFromJson(response);
}

Result<RemoteStatus> Client::GetStatus(const std::string& id) {
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue::Str("status"));
  if (!id.empty()) request.Set("id", JsonValue::Str(id));
  SEEDB_ASSIGN_OR_RETURN(JsonValue response, Call(request));
  SEEDB_RETURN_IF_ERROR(CheckOk(response));
  return StatusFromJson(response);
}

Result<JsonValue> Client::Metrics() {
  SEEDB_ASSIGN_OR_RETURN(JsonValue response, Call(MetricsRequestToJson()));
  SEEDB_RETURN_IF_ERROR(CheckOk(response));
  return response;
}

Result<RemoteResult> RemoteSession::Await() {
  while (true) {
    SEEDB_ASSIGN_OR_RETURN(JsonValue frame, client_->NextPushFrame(id_));
    const std::string type = frame.GetString("type");
    if (type == "drained") break;
    if (!frame.GetBool("ok")) {
      // Mid-stream failure (budget breach, execution error): remember it,
      // keep pumping to the drained marker, still fetch partial results.
      last_error_ = StatusFromErrorResponse(frame);
      continue;
    }
    if (type == "progress" && on_progress_) {
      SEEDB_ASSIGN_OR_RETURN(RemoteProgress progress, ProgressFromJson(frame));
      on_progress_(progress);
    }
  }
  return client_->Finish(id_);
}

Result<std::optional<RemoteProgress>> RemoteSession::Next() {
  Result<std::optional<RemoteProgress>> next = client_->Next(id_);
  if (!next.ok()) last_error_ = next.status();
  return next;
}

Status RemoteSession::Cancel() { return client_->Cancel(id_); }

Status RemoteSession::Resume() { return client_->Resume(id_); }

}  // namespace seedb::server
