// Minimal JSON value / parser / writer for the wire protocol.
//
// The serving layer (src/server) frames every message as one JSON object per
// line. This module is deliberately small: a tagged value type with
// insertion-ordered objects, a recursive-descent parser hardened against
// malformed input (truncated documents, bad escapes, absurd nesting — all
// graceful Status errors, never crashes), and a compact writer whose number
// formatting round-trips IEEE doubles exactly (%.17g), so utilities fetched
// over the wire compare equal to in-process results bit for bit.
//
// Not a general-purpose JSON library: no comments, no NaN/Infinity tokens
// (callers omit non-finite fields), no streaming. bench/bench_util.h keeps
// its own tiny writer for artifacts; this one exists because the server also
// needs to *parse*.

#ifndef SEEDB_SERVER_JSON_H_
#define SEEDB_SERVER_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"

namespace seedb::server {

/// \brief A parsed JSON document node (null / bool / number / string /
/// array / object). Object keys keep insertion order, so dumped messages are
/// stable and diffable.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.num_ = d;
    return v;
  }
  static JsonValue Str(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.str_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Loose accessors: return the payload when the kind matches, the given
  /// fallback otherwise — protocol handlers treat wrong-typed fields like
  /// absent ones.
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    return is_number() ? static_cast<int64_t>(num_) : fallback;
  }
  const std::string& AsString() const {
    static const std::string kEmpty;
    return is_string() ? str_ : kEmpty;
  }

  // --- Array access ---
  size_t size() const { return arr_.size(); }
  const JsonValue& at(size_t i) const { return arr_[i]; }
  const std::vector<JsonValue>& items() const { return arr_; }
  JsonValue& Append(JsonValue v) {
    arr_.push_back(std::move(v));
    return *this;
  }

  // --- Object access ---
  /// The member named `key`, or nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;
  /// Sets (or replaces) a member; creates object semantics on a fresh value.
  JsonValue& Set(const std::string& key, JsonValue v);
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return obj_;
  }

  /// Typed object-member lookup with fallback: absent or wrong-typed
  /// members yield the fallback.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Compact serialization (no whitespace). Doubles print as %.17g so they
  /// round-trip exactly; integral doubles in the int64 range print without
  /// an exponent or decimal point.
  std::string Dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Parses one JSON document. The whole input must be consumed (trailing
/// whitespace allowed); malformed input of any shape is an InvalidArgument
/// Status, never undefined behavior. Nesting is capped (64 levels).
Result<JsonValue> ParseJson(std::string_view text);

/// `s` as a quoted JSON string literal (escaping ", \, and control bytes).
std::string JsonQuote(const std::string& s);

}  // namespace seedb::server

#endif  // SEEDB_SERVER_JSON_H_
