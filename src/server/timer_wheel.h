// A hashed timer wheel for the serving loop's session idle-timeout
// eviction: O(1) schedule/cancel, O(slots touched) advance, no per-timer
// allocation churn beyond the entry itself.
//
// The wheel is an array of slots, each one tick wide; a timer due in d ms
// lands in slot (cursor + d/tick) % slots, carrying a rounds counter for
// delays longer than one full revolution. Advance(now) walks the slots the
// clock has passed and returns the keys whose timers expired. Rescheduling
// an existing key moves its (single) timer — the serving loop re-arms a
// session's eviction timer on every touch via the lazy pattern: expire,
// check the session's real last-activity stamp, re-schedule the remainder
// if it was touched since.
//
// Thread-safety: externally synchronized (the event loop owns the wheel and
// guards it with one mutex — see RecommendationServer).

#ifndef SEEDB_SERVER_TIMER_WHEEL_H_
#define SEEDB_SERVER_TIMER_WHEEL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace seedb::server {

class TimerWheel {
 public:
  /// `tick_ms` is the expiry granularity; `num_slots` * `tick_ms` is the
  /// span one revolution covers (longer delays take extra rounds).
  explicit TimerWheel(uint64_t tick_ms = 100, size_t num_slots = 512);

  /// Schedules (or moves) `key` to fire `delay_ms` from `now_ms`. A delay
  /// of zero fires on the next Advance() that crosses a tick boundary.
  void Schedule(const std::string& key, uint64_t now_ms, uint64_t delay_ms);

  /// Drops `key`'s pending timer, if any.
  void Cancel(const std::string& key);

  /// Advances the wheel to `now_ms` and appends every expired key to
  /// `expired` (unordered across slots). Keys fire at most once per
  /// Schedule().
  void Advance(uint64_t now_ms, std::vector<std::string>* expired);

  size_t pending() const { return entries_.size(); }
  uint64_t tick_ms() const { return tick_ms_; }

 private:
  struct Entry {
    size_t slot = 0;
    /// Full revolutions left before this entry may fire.
    uint64_t rounds = 0;
  };

  uint64_t tick_ms_;
  std::vector<std::vector<std::string>> slots_;
  std::unordered_map<std::string, Entry> entries_;
  /// The slot the cursor sits on and the absolute tick it represents.
  size_t cursor_ = 0;
  uint64_t current_tick_ = 0;
  bool started_ = false;
};

}  // namespace seedb::server

#endif  // SEEDB_SERVER_TIMER_WHEEL_H_
