#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace seedb::server {
namespace {

constexpr int kMaxDepth = 64;

/// Longest accepted number token. 17 significant digits + sign, point, and
/// a 3-digit exponent fit in ~25 bytes; anything past this cap is either an
/// attack on strtod or garbage, and is rejected before strtod ever runs.
constexpr size_t kMaxNumberChars = 64;

/// Cursor over the input with the shared error shape.
struct Parser {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipWhitespace() {
    while (!AtEnd() && (text[pos] == ' ' || text[pos] == '\t' ||
                        text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos) + ": " + what);
  }

  bool Consume(char c) {
    if (AtEnd() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  Status Expect(std::string_view literal) {
    if (text.size() - pos < literal.size() ||
        text.substr(pos, literal.size()) != literal) {
      return Error("expected '" + std::string(literal) + "'");
    }
    pos += literal.size();
    return Status::OK();
  }

  Result<JsonValue> ParseValue(int depth);
  Result<std::string> ParseString();
  Result<JsonValue> ParseNumber();
};

void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

Result<std::string> Parser::ParseString() {
  if (!Consume('"')) return Error("expected '\"'");
  std::string out;
  while (true) {
    if (AtEnd()) return Error("unterminated string");
    char c = text[pos++];
    if (c == '"') return out;
    if (static_cast<unsigned char>(c) < 0x20) {
      return Error("unescaped control character in string");
    }
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (AtEnd()) return Error("unterminated escape");
    char e = text[pos++];
    switch (e) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (text.size() - pos < 4) return Error("truncated \\u escape");
        uint32_t cp = 0;
        for (int i = 0; i < 4; ++i) {
          char h = text[pos++];
          cp <<= 4;
          if (h >= '0' && h <= '9') {
            cp |= static_cast<uint32_t>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            cp |= static_cast<uint32_t>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            cp |= static_cast<uint32_t>(h - 'A' + 10);
          } else {
            return Error("bad hex digit in \\u escape");
          }
        }
        // Surrogate pair (two \uXXXX escapes) for astral code points.
        if (cp >= 0xD800 && cp <= 0xDBFF) {
          if (text.size() - pos < 6 || text[pos] != '\\' ||
              text[pos + 1] != 'u') {
            return Error("unpaired high surrogate");
          }
          pos += 2;
          uint32_t lo = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            lo <<= 4;
            if (h >= '0' && h <= '9') {
              lo |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              lo |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              lo |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          if (lo < 0xDC00 || lo > 0xDFFF) {
            return Error("invalid low surrogate");
          }
          cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
          return Error("unpaired low surrogate");
        }
        AppendUtf8(&out, cp);
        break;
      }
      default:
        return Error("unknown escape '\\" + std::string(1, e) + "'");
    }
  }
}

Result<JsonValue> Parser::ParseNumber() {
  const size_t start = pos;
  if (Consume('-')) {
    // sign consumed
  }
  if (!AtEnd() && (Peek() == 'N' || Peek() == 'n' || Peek() == 'I' ||
                   Peek() == 'i')) {
    // Explicitly rejected rather than left to the digit check: strtod would
    // happily parse "NaN" / "Infinity", and a non-finite value has no JSON
    // spelling — it must never enter a wire frame.
    return Error("NaN/Infinity are not valid JSON numbers");
  }
  if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
    return Error("malformed number");
  }
  // JSON's integer grammar: "0" or a non-zero digit followed by digits —
  // a leading zero ("01") is malformed.
  if (Peek() == '0') {
    ++pos;
    if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("malformed number: leading zero");
    }
  } else {
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos;
    }
  }
  if (Consume('.')) {
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("malformed number: digits must follow '.'");
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos;
  }
  if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
    ++pos;
    if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos;
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("malformed number: empty exponent");
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos;
  }
  if (pos - start > kMaxNumberChars) {
    return Error("number token too long (" + std::to_string(pos - start) +
                 " > " + std::to_string(kMaxNumberChars) + " chars)");
  }
  const std::string token(text.substr(start, pos - start));
  char* end = nullptr;
  double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    return Error("malformed number");
  }
  // Overflow ("1e999") saturates strtod to +/-HUGE_VAL; such a value would
  // be indistinguishable from a client sending Infinity. Underflow to 0 is
  // accepted (a denormal rounding toward zero loses precision, not kind).
  if (!std::isfinite(value)) {
    return Error("number out of double range");
  }
  return JsonValue::Number(value);
}

Result<JsonValue> Parser::ParseValue(int depth) {
  if (depth > kMaxDepth) return Error("nesting too deep");
  SkipWhitespace();
  if (AtEnd()) return Error("unexpected end of input");
  const char c = Peek();
  if (c == '{') {
    ++pos;
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      SEEDB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SEEDB_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}' in object");
    }
  }
  if (c == '[') {
    ++pos;
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      SEEDB_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']' in array");
    }
  }
  if (c == '"') {
    SEEDB_ASSIGN_OR_RETURN(std::string s, ParseString());
    return JsonValue::Str(std::move(s));
  }
  if (c == 't') {
    SEEDB_RETURN_IF_ERROR(Expect("true"));
    return JsonValue::Bool(true);
  }
  if (c == 'f') {
    SEEDB_RETURN_IF_ERROR(Expect("false"));
    return JsonValue::Bool(false);
  }
  if (c == 'n') {
    SEEDB_RETURN_IF_ERROR(Expect("null"));
    return JsonValue::Null();
  }
  if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
    return ParseNumber();
  }
  return Error(std::string("unexpected character '") + c + "'");
}

void DumpTo(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBool:
      *out += v.AsBool() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber: {
      const double d = v.AsDouble();
      // Non-finite values have no JSON spelling; emit null (callers omit
      // such fields in the first place).
      if (!std::isfinite(d)) {
        *out += "null";
        return;
      }
      const double r = std::nearbyint(d);
      if (r == d && std::fabs(d) < 9.2e18) {
        *out += std::to_string(static_cast<int64_t>(d));
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      *out += buf;
      return;
    }
    case JsonValue::Kind::kString:
      *out += JsonQuote(v.AsString());
      return;
    case JsonValue::Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) *out += ',';
        first = false;
        DumpTo(item, out);
      }
      *out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) *out += ',';
        first = false;
        *out += JsonQuote(key);
        *out += ':';
        DumpTo(value, out);
      }
      *out += '}';
      return;
    }
  }
}

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  kind_ = Kind::kObject;
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(v));
  return *this;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

double JsonValue::GetDouble(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : fallback;
}

int64_t JsonValue::GetInt(const std::string& key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsInt() : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : fallback;
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<JsonValue> ParseJson(std::string_view text) {
  Parser parser{text};
  SEEDB_ASSIGN_OR_RETURN(JsonValue value, parser.ParseValue(0));
  parser.SkipWhitespace();
  if (!parser.AtEnd()) {
    return parser.Error("trailing characters after document");
  }
  return value;
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace seedb::server
