// Vega-Lite export: serializes a ChartSpec as a Vega-Lite v5 JSON document,
// so recommended views can be dropped into any web frontend (the thin-client
// deployment of §3.2).

#ifndef SEEDB_VIZ_VEGA_H_
#define SEEDB_VIZ_VEGA_H_

#include <string>

#include "viz/chart.h"

namespace seedb::viz {

/// Escapes a string for embedding in JSON (quotes, control characters).
std::string JsonEscape(const std::string& s);

/// Renders `spec` as a self-contained Vega-Lite v5 JSON document with a
/// grouped-bar (or line) encoding of the target/comparison series.
std::string ToVegaLite(const ChartSpec& spec);

}  // namespace seedb::viz

#endif  // SEEDB_VIZ_VEGA_H_
