// Per-view metadata (§3.2): "study metadata for each view (e.g. size of
// result, sample data, value with maximum change and other statistics)".

#ifndef SEEDB_VIZ_METADATA_H_
#define SEEDB_VIZ_METADATA_H_

#include <string>

#include "core/view_processor.h"
#include "db/value.h"

namespace seedb::viz {

/// Summary statistics about one scored view, for the detail panel.
struct ViewMetadata {
  /// Number of groups in the aligned result.
  size_t result_size = 0;
  /// Sum of raw aggregate values on each side.
  double target_total = 0.0;
  double comparison_total = 0.0;
  /// Group whose probability changed the most between the halves, with the
  /// signed change (target minus comparison).
  db::Value max_change_key;
  double max_change = 0.0;
  /// Groups present in the target but absent (zero) in the comparison and
  /// vice versa.
  size_t groups_only_in_target = 0;
  size_t groups_only_in_comparison = 0;

  std::string ToString() const;
};

/// Computes display metadata for one processed view.
ViewMetadata ComputeViewMetadata(const core::ViewResult& result);

}  // namespace seedb::viz

#endif  // SEEDB_VIZ_METADATA_H_
