#include "viz/vega.h"

#include "util/string_util.h"

namespace seedb::viz {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToVegaLite(const ChartSpec& spec) {
  std::string mark = spec.type == ChartType::kLine ? "line" : "bar";
  std::string out = "{\n";
  out +=
      "  \"$schema\": \"https://vega.github.io/schema/vega-lite/v5.json\",\n";
  out += "  \"title\": \"" + JsonEscape(spec.title) + "\",\n";
  out += "  \"data\": {\"values\": [\n";
  bool first = true;
  for (size_t s = 0; s < spec.series.size(); ++s) {
    for (size_t i = 0; i < spec.series[s].values.size(); ++i) {
      if (!first) out += ",\n";
      first = false;
      std::string category =
          i < spec.categories.size() ? spec.categories[i] : "";
      out += StringPrintf("    {\"%s\": \"%s\", \"series\": \"%s\", "
                          "\"value\": %s}",
                          JsonEscape(spec.x_label).c_str(),
                          JsonEscape(category).c_str(),
                          JsonEscape(spec.series[s].label).c_str(),
                          FormatDouble(spec.series[s].values[i], 8).c_str());
    }
  }
  out += "\n  ]},\n";
  out += "  \"mark\": \"" + mark + "\",\n";
  out += "  \"encoding\": {\n";
  out += "    \"x\": {\"field\": \"" + JsonEscape(spec.x_label) +
         "\", \"type\": \"nominal\"},\n";
  out += "    \"y\": {\"field\": \"value\", \"type\": \"quantitative\", "
         "\"title\": \"" +
         JsonEscape(spec.y_label) + "\"},\n";
  out += "    \"xOffset\": {\"field\": \"series\"},\n";
  out += "    \"color\": {\"field\": \"series\"}\n";
  out += "  }\n";
  out += "}\n";
  return out;
}

}  // namespace seedb::viz
