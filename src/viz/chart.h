// Chart specification and chart-type selection (§3.2).
//
// "For each view delivered by the backend, the frontend creates a
// visualization based on parameters such as the data type (e.g. ordinal,
// numeric), number of distinct values, and semantics." This module is the
// library-side equivalent: a renderer-independent ChartSpec plus the
// selection rules; renderers (ASCII, Vega-Lite) live alongside.

#ifndef SEEDB_VIZ_CHART_H_
#define SEEDB_VIZ_CHART_H_

#include <string>
#include <vector>

#include "core/recommendation.h"
#include "core/view_processor.h"
#include "db/statistics.h"

namespace seedb::viz {

enum class ChartType {
  /// Categorical x-axis, few distinct values.
  kBar,
  /// Numeric/ordinal x-axis (trend reading).
  kLine,
  /// Too many categories for bars; rendered as a ranked table.
  kTable,
};

const char* ChartTypeToString(ChartType type);

/// One plotted series (e.g. the target view or the comparison view).
struct ChartSeries {
  std::string label;
  std::vector<double> values;
};

/// Renderer-independent chart description.
struct ChartSpec {
  ChartType type = ChartType::kBar;
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<std::string> categories;
  std::vector<ChartSeries> series;
};

/// Chart-type rules: numeric dimension -> line; <= `max_bar_categories`
/// categories -> bar; otherwise table.
ChartType ChooseChartType(db::ValueType dimension_type,
                          size_t num_categories,
                          size_t max_bar_categories = 24);

/// Builds the chart for one scored view: two series (target "Query" vs
/// comparison "Overall"), probability scale.
ChartSpec BuildChartSpec(const core::ViewResult& result);

/// Same, but plotting raw aggregate values instead of probabilities
/// (Figure 1-3 style: "Total Sales ($)" on the y-axis).
ChartSpec BuildRawChartSpec(const core::ViewResult& result);

}  // namespace seedb::viz

#endif  // SEEDB_VIZ_CHART_H_
