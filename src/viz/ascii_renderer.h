// Terminal rendering of ChartSpecs — the demo frontend's display surface in
// this library build.

#ifndef SEEDB_VIZ_ASCII_RENDERER_H_
#define SEEDB_VIZ_ASCII_RENDERER_H_

#include <string>

#include "viz/chart.h"

namespace seedb::viz {

struct AsciiOptions {
  /// Width of the bar area in characters.
  size_t bar_width = 40;
  /// Bar glyphs per series (cycled if more series than glyphs).
  std::string glyphs = "#=*+";
  /// Maximum categories rendered before eliding the tail.
  size_t max_rows = 30;
};

/// Renders any ChartSpec as text: grouped horizontal bars for kBar/kLine,
/// an aligned value table for kTable.
std::string RenderAscii(const ChartSpec& spec, const AsciiOptions& options = {});

/// Convenience: chart + utility header for one recommendation.
std::string RenderRecommendation(const core::Recommendation& rec,
                                 const AsciiOptions& options = {});

}  // namespace seedb::viz

#endif  // SEEDB_VIZ_ASCII_RENDERER_H_
