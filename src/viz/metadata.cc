#include "viz/metadata.h"

#include <cmath>

#include "util/string_util.h"

namespace seedb::viz {

std::string ViewMetadata::ToString() const {
  return StringPrintf(
      "groups=%zu target_total=%s comparison_total=%s max_change=%s@%s "
      "only_target=%zu only_comparison=%zu",
      result_size, FormatDouble(target_total, 2).c_str(),
      FormatDouble(comparison_total, 2).c_str(),
      FormatDouble(max_change, 4).c_str(), max_change_key.ToString().c_str(),
      groups_only_in_target, groups_only_in_comparison);
}

ViewMetadata ComputeViewMetadata(const core::ViewResult& result) {
  const core::AlignedPair& d = result.distributions;
  ViewMetadata meta;
  meta.result_size = d.target.keys.size();
  double best_abs = -1.0;
  for (size_t i = 0; i < d.target.keys.size(); ++i) {
    meta.target_total += d.target_raw[i];
    meta.comparison_total += d.comparison_raw[i];
    double change = d.target.probabilities[i] - d.comparison.probabilities[i];
    if (std::abs(change) > best_abs) {
      best_abs = std::abs(change);
      meta.max_change = change;
      meta.max_change_key = d.target.keys[i];
    }
    if (d.target_raw[i] != 0.0 && d.comparison_raw[i] == 0.0) {
      ++meta.groups_only_in_target;
    }
    if (d.target_raw[i] == 0.0 && d.comparison_raw[i] != 0.0) {
      ++meta.groups_only_in_comparison;
    }
  }
  return meta;
}

}  // namespace seedb::viz
