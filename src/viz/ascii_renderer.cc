#include "viz/ascii_renderer.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace seedb::viz {
namespace {

std::string RenderTable(const ChartSpec& spec, const AsciiOptions& options) {
  std::string out;
  size_t rows = std::min(spec.categories.size(), options.max_rows);
  size_t label_width = spec.x_label.size();
  for (size_t i = 0; i < rows; ++i) {
    label_width = std::max(label_width, spec.categories[i].size());
  }
  out += spec.x_label;
  out.append(label_width - spec.x_label.size() + 2, ' ');
  for (const auto& s : spec.series) {
    out += s.label + "  ";
  }
  out += "\n";
  for (size_t i = 0; i < rows; ++i) {
    out += spec.categories[i];
    out.append(label_width - spec.categories[i].size() + 2, ' ');
    for (const auto& s : spec.series) {
      std::string v = i < s.values.size() ? FormatDouble(s.values[i], 4) : "-";
      out += v;
      if (s.label.size() + 2 > v.size()) {
        out.append(s.label.size() + 2 - v.size(), ' ');
      }
    }
    out += "\n";
  }
  if (rows < spec.categories.size()) {
    out += StringPrintf("... (%zu more)\n", spec.categories.size() - rows);
  }
  return out;
}

std::string RenderBars(const ChartSpec& spec, const AsciiOptions& options) {
  double max_value = 1e-12;
  for (const auto& s : spec.series) {
    for (double v : s.values) max_value = std::max(max_value, std::abs(v));
  }
  size_t label_width = 0;
  size_t rows = std::min(spec.categories.size(), options.max_rows);
  for (size_t i = 0; i < rows; ++i) {
    label_width = std::max(label_width, spec.categories[i].size());
  }

  std::string out;
  for (size_t i = 0; i < rows; ++i) {
    for (size_t s = 0; s < spec.series.size(); ++s) {
      // Category label on the first series line only.
      if (s == 0) {
        out += spec.categories[i];
        out.append(label_width - spec.categories[i].size(), ' ');
      } else {
        out.append(label_width, ' ');
      }
      out += " |";
      double v = i < spec.series[s].values.size() ? spec.series[s].values[i]
                                                  : 0.0;
      size_t len = static_cast<size_t>(
          std::round(std::abs(v) / max_value *
                     static_cast<double>(options.bar_width)));
      char glyph = options.glyphs[s % options.glyphs.size()];
      out.append(len, glyph);
      out += StringPrintf(" %s%s", v < 0 ? "-" : "",
                          FormatDouble(std::abs(v), 4).c_str());
      out += "\n";
    }
  }
  if (rows < spec.categories.size()) {
    out += StringPrintf("... (%zu more)\n", spec.categories.size() - rows);
  }
  // Legend.
  for (size_t s = 0; s < spec.series.size(); ++s) {
    out += StringPrintf("  %c = %s\n", options.glyphs[s % options.glyphs.size()],
                        spec.series[s].label.c_str());
  }
  return out;
}

}  // namespace

std::string RenderAscii(const ChartSpec& spec, const AsciiOptions& options) {
  std::string out = spec.title + "\n";
  out += StringPrintf("[%s chart] x: %s, y: %s\n",
                      ChartTypeToString(spec.type), spec.x_label.c_str(),
                      spec.y_label.c_str());
  if (spec.type == ChartType::kTable) {
    out += RenderTable(spec, options);
  } else {
    out += RenderBars(spec, options);
  }
  return out;
}

std::string RenderRecommendation(const core::Recommendation& rec,
                                 const AsciiOptions& options) {
  std::string out = StringPrintf("#%zu  %s\n", rec.rank,
                                 rec.view().Id().c_str());
  out += "    target:     " + rec.target_sql + "\n";
  out += "    comparison: " + rec.comparison_sql + "\n";
  out += RenderAscii(BuildChartSpec(rec.result), options);
  return out;
}

}  // namespace seedb::viz
