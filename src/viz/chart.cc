#include "viz/chart.h"

#include "util/string_util.h"

namespace seedb::viz {

const char* ChartTypeToString(ChartType type) {
  switch (type) {
    case ChartType::kBar:
      return "bar";
    case ChartType::kLine:
      return "line";
    case ChartType::kTable:
      return "table";
  }
  return "?";
}

ChartType ChooseChartType(db::ValueType dimension_type, size_t num_categories,
                          size_t max_bar_categories) {
  if (dimension_type == db::ValueType::kInt64 ||
      dimension_type == db::ValueType::kDouble) {
    return ChartType::kLine;
  }
  if (num_categories <= max_bar_categories) {
    return ChartType::kBar;
  }
  return ChartType::kTable;
}

namespace {

ChartSpec BuildSpec(const core::ViewResult& result, bool raw) {
  const core::AlignedPair& dist = result.distributions;
  ChartSpec spec;
  db::ValueType key_type =
      dist.target.keys.empty() ? db::ValueType::kString
                               : dist.target.keys.front().type();
  spec.type = ChooseChartType(key_type, dist.target.keys.size());
  spec.title = StringPrintf("%s (utility %s)", result.view.Id().c_str(),
                            FormatDouble(result.utility, 4).c_str());
  spec.x_label = result.view.dimension;
  if (raw) {
    spec.y_label = result.view.measure.empty()
                       ? "COUNT(*)"
                       : std::string(db::AggregateFunctionToSql(
                             result.view.func)) +
                             "(" + result.view.measure + ")";
  } else {
    spec.y_label = "probability";
  }
  spec.categories.reserve(dist.target.keys.size());
  for (const auto& key : dist.target.keys) {
    spec.categories.push_back(key.ToString());
  }
  spec.series.push_back(
      {"Query (target)", raw ? dist.target_raw : dist.target.probabilities});
  spec.series.push_back({"Overall (comparison)",
                         raw ? dist.comparison_raw
                             : dist.comparison.probabilities});
  return spec;
}

}  // namespace

ChartSpec BuildChartSpec(const core::ViewResult& result) {
  return BuildSpec(result, /*raw=*/false);
}

ChartSpec BuildRawChartSpec(const core::ViewResult& result) {
  return BuildSpec(result, /*raw=*/true);
}

}  // namespace seedb::viz
